// Scenario tests for the A-tree forest machinery, modelled on the paper's
// Figures 7-9: blocking, mid-segment nearest-dominated points, the S2/S3
// length rule, move-engine invariants, and the tree transformations of
// rtree/transform.h.
#include <gtest/gtest.h>

#include <random>

#include "atree/atree.h"
#include "atree/forest.h"
#include "atree/generalized.h"
#include "netgen/netgen.h"
#include "rtree/metrics.h"
#include "rtree/segments.h"
#include "rtree/transform.h"
#include "rtree/validate.h"
#include "tech/technology.h"
#include "wiresize/delay_eval.h"

namespace cong93 {
namespace {

int root_at(const Forest& f, Point p)
{
    for (const int r : f.roots())
        if (f.node(r).p == p) return r;
    ADD_FAILURE() << "no root at (" << p.x << ',' << p.y << ')';
    return -1;
}

// ------------------------------------------------- Definition 5/6: blocking

TEST(ForestScenario, NwRootBlockedByColumnPoint)
{
    // q=(2,6) is NW of p=(4,4); the sink r=(2,5) sits on q's column inside
    // the gate [p.y, q.y) and blocks q from p (Definition 5).
    Forest f(Point{0, 0}, {{4, 4}, {2, 6}, {2, 5}});
    const auto q = f.analyze(root_at(f, Point{4, 4}));
    // (2,5) is itself NW of p and unblocked, so mx = (2,5), not (2,6).
    ASSERT_TRUE(q.mx.has_value());
    EXPECT_EQ(*q.mx, (Point{2, 5}));
    EXPECT_EQ(q.dx, 2);
}

TEST(ForestScenario, NwRootBlockedLeavesNoMx)
{
    // Same geometry but the blocker sits at (2,4): on the column, inside the
    // gate, *not* NW of p (same row).  q is blocked and no other NW root
    // exists -> dx = infinity.
    Forest f(Point{0, 0}, {{4, 4}, {2, 6}, {2, 4}});
    const auto q = f.analyze(root_at(f, Point{4, 4}));
    EXPECT_FALSE(q.mx.has_value());
    EXPECT_EQ(q.dx, kInfLen);
    // (2,4) is dominated by p: it is the nearest dominated point.
    EXPECT_EQ(q.df, 2);
    EXPECT_EQ(*q.mf_west, (Point{2, 4}));
}

TEST(ForestScenario, SeRootBlockedByRowPoint)
{
    // my-side symmetry: q=(6,2) is SE of p=(4,4); blocker (5,2) on q's row
    // inside [p.x, q.x).
    Forest f(Point{0, 0}, {{4, 4}, {6, 2}, {5, 2}});
    const auto q = f.analyze(root_at(f, Point{4, 4}));
    ASSERT_TRUE(q.my.has_value());
    EXPECT_EQ(*q.my, (Point{5, 2}));  // the blocker is itself the nearest SE root
    EXPECT_EQ(q.dy, 2);
}

TEST(ForestScenario, EdgeInteriorBlocks)
{
    // A wire interior (not a node) can block: p=(5,4) and q=(3,6) NW of p;
    // a horizontal wire grown from (30,5) to (2,5) crosses q's column at
    // (3,5), inside the gate [4,6) -> q is blocked from p, and the wire's
    // fresh root (2,5) becomes the nearest unblocked NW root instead.
    Forest f(Point{0, 0}, {{5, 4}, {3, 6}, {30, 5}});
    const auto res = f.apply_path(root_at(f, Point{30, 5}), {Point{2, 5}});
    ASSERT_FALSE(res.merged);
    const auto q = f.analyze(root_at(f, Point{5, 4}));
    ASSERT_TRUE(q.mx.has_value());
    EXPECT_EQ(*q.mx, (Point{2, 5}));  // NOT the blocked (3,6)
    EXPECT_EQ(q.dx, 3);
}

// ------------------------------------- Definition 7: mf on a segment interior

TEST(ForestScenario, NearestDominatedPointMidSegment)
{
    Forest f(Point{0, 0}, {{6, 6}, {2, 20}});
    // Grow (2,20) south to (2,2): now the best dominated point for (6,6) is
    // the wire interior point (2,6)?  No: dominated requires y <= 6, and the
    // closest such wire point is (2,6) exactly; rect distance 4 beats the
    // origin's 12.
    const auto res = f.apply_path(root_at(f, Point{2, 20}), {Point{2, 2}});
    ASSERT_FALSE(res.merged);
    const auto q = f.analyze(root_at(f, Point{6, 6}));
    EXPECT_EQ(q.df, 4);
    EXPECT_EQ(*q.mf_west, (Point{2, 6}));
    EXPECT_EQ(*q.mf_south, (Point{2, 6}));
}

TEST(ForestScenario, MfWestVsMfSouthTie)
{
    // Two dominated terminals at equal distance: west-most and south-most
    // selections differ.
    Forest f(Point{0, 0}, {{5, 5}, {2, 4}, {4, 2}});
    const auto q = f.analyze(root_at(f, Point{5, 5}));
    EXPECT_EQ(q.df, 4);
    EXPECT_EQ(*q.mf_west, (Point{2, 4}));
    EXPECT_EQ(*q.mf_south, (Point{4, 2}));
}

// ----------------------------------------- Figure 8: S2/S3 length selection

TEST(ForestScenario, S2StopsAtMySRow)
{
    // The engine scans roots farthest-from-origin first, so make the S2
    // candidate the farthest: p=(3,9) (dist 12) with my=(8,2) (dist 10).
    // dy = 7 < df = 12 and dist_y(mf_south=origin, p) = 9 > dy, so the
    // vertical move covers exactly dy and stops level with my (Fig. 8b).
    Forest f(Point{0, 0}, {{3, 9}, {8, 2}});
    MoveEngine engine(f, HeuristicPolicy::farthest_corner);
    ASSERT_TRUE(engine.step());
    ASSERT_FALSE(engine.log().empty());
    const MoveRecord& mv = engine.log().front();
    EXPECT_EQ(mv.type, MoveType::s2);
    EXPECT_EQ(mv.from1, (Point{3, 9}));
    EXPECT_EQ(mv.to, (Point{3, 2}));  // moved exactly dy = 7 south
    EXPECT_EQ(mv.added, 7);
    EXPECT_EQ(mv.sb, 0);  // safe moves carry no suboptimality
}

TEST(ForestScenario, S2StopsAtMfSouthRow)
{
    // dist_y(mf_south, p) < dy: the move stops level with mf_south
    // (Fig. 8c).  p=(3,20) is the farthest root (dist 23); the dominated
    // terminal (1,18) gives df=4 and mf_south row 18 (dist_y=2); the SE
    // root (5,17) gives dy=3 < df.
    Forest f(Point{0, 0}, {{3, 20}, {1, 18}, {5, 17}});
    MoveEngine engine(f, HeuristicPolicy::farthest_corner);
    ASSERT_TRUE(engine.step());
    const MoveRecord& mv = engine.log().front();
    EXPECT_EQ(mv.type, MoveType::s2);
    EXPECT_EQ(mv.from1, (Point{3, 20}));
    EXPECT_EQ(mv.to, (Point{3, 18}));  // min(dist_y(mf_south,p)=2, dy=3) = 2
}

TEST(ForestScenario, S1ConnectsToMfWest)
{
    // dx, dy both >= df: direct connection to mf_west.
    Forest f(Point{0, 0}, {{4, 4}, {2, 3}});
    MoveEngine engine(f, HeuristicPolicy::farthest_corner);
    ASSERT_TRUE(engine.step());
    const MoveRecord& mv = engine.log().front();
    EXPECT_EQ(mv.type, MoveType::s1);
    EXPECT_EQ(mv.from1, (Point{4, 4}));
    EXPECT_EQ(mv.to, (Point{2, 3}));
    EXPECT_EQ(mv.added, 3);
}

// ------------------------------------------------- engine global invariants

TEST(ForestScenario, EngineInvariantsOnRandomNets)
{
    std::mt19937_64 rng(808);
    for (int trial = 0; trial < 30; ++trial) {
        std::uniform_int_distribution<Coord> c(0, 30);
        std::vector<Point> sinks;
        for (int i = 0; i < 10; ++i) sinks.push_back({c(rng), c(rng)});
        Forest f(Point{0, 0}, sinks);
        MoveEngine engine(f, HeuristicPolicy::farthest_corner);
        std::size_t prev_roots = f.roots().size();
        Length prev_len = 0;
        while (engine.step()) {
            // Every move either merges trees or keeps the count.
            EXPECT_LE(f.roots().size(), prev_roots);
            EXPECT_GE(f.total_length(), prev_len);
            prev_roots = f.roots().size();
            prev_len = f.total_length();
            // Roots are pairwise distinct points and all dominated points
            // stay inside the first quadrant.
            for (const int r : f.roots()) {
                EXPECT_GE(f.node(r).p.x, 0);
                EXPECT_GE(f.node(r).p.y, 0);
            }
        }
        EXPECT_TRUE(f.single_tree());
        // Safe moves never carry suboptimality; heuristic moves may.
        for (const MoveRecord& mv : engine.log()) {
            if (mv.type != MoveType::h1 && mv.type != MoveType::h2) {
                EXPECT_EQ(mv.sb, 0);
                EXPECT_EQ(mv.sb_qmst, 0);
            }
            EXPECT_GE(mv.added, 0);
        }
    }
}

TEST(ForestScenario, HeuristicMovesDoOccur)
{
    // Dense nets exercise the H-paths; make sure the engine actually takes
    // them (the paper reports ~4% heuristic moves).
    std::mt19937_64 rng(909);
    int heuristics = 0;
    for (int trial = 0; trial < 40; ++trial) {
        std::uniform_int_distribution<Coord> c(0, 12);
        Net net;
        net.source = Point{0, 0};
        for (int i = 0; i < 10; ++i) net.sinks.push_back({c(rng), c(rng)});
        heuristics += build_atree(net).heuristic_moves;
    }
    EXPECT_GT(heuristics, 0);
}

// --------------------------------------------------------- transformations

TEST(Transform, SubdivideMakesShortSegmentsAndKeepsGeometry)
{
    const Net net{{0, 0}, {{300, 100}, {50, 400}, {220, 260}}};
    const RoutingTree tree = build_atree_general(net).tree;
    const RoutingTree fine = subdivide_edges(tree, 64);
    EXPECT_TRUE(same_geometry(tree, fine));
    EXPECT_EQ(total_length(fine), total_length(tree));
    EXPECT_EQ(sum_all_node_path_lengths(fine), sum_all_node_path_lengths(tree));
    EXPECT_TRUE(spans_net(fine, net));
    EXPECT_TRUE(validate_structure(fine).empty());
    const SegmentDecomposition segs(fine);
    for (std::size_t i = 0; i < segs.count(); ++i) EXPECT_LE(segs[i].length, 64);
}

TEST(Transform, SubdivideRejectsBadPiece)
{
    RoutingTree t(Point{0, 0});
    t.mark_sink(t.add_child(t.root(), Point{4, 0}));
    EXPECT_THROW(subdivide_edges(t, 0), std::invalid_argument);
}

TEST(Transform, SimplifyUndoesWaypoints)
{
    RoutingTree t(Point{0, 0});
    // Straight run with redundant waypoints.
    const NodeId end = t.attach_path(t.root(), {{0, 2}, {0, 5}, {0, 9}, {4, 9}});
    t.mark_sink(end);
    EXPECT_EQ(t.node_count(), 5u);
    const RoutingTree s = simplify(t);
    EXPECT_EQ(s.node_count(), 3u);  // source, corner, sink
    EXPECT_TRUE(same_geometry(s, t));
    EXPECT_EQ(s.sinks().size(), 1u);
}

TEST(Transform, SimplifyKeepsForcedBoundaries)
{
    RoutingTree t(Point{0, 0});
    const NodeId mid = t.add_child(t.root(), Point{0, 5});
    t.mark_segment_boundary(mid);
    t.mark_sink(t.add_child(mid, Point{0, 9}));
    const RoutingTree s = simplify(t);
    EXPECT_EQ(s.node_count(), 3u);  // the boundary node survives
    const SegmentDecomposition segs(s);
    EXPECT_EQ(segs.count(), 2u);
}

TEST(Transform, SameGeometryIgnoresRepresentation)
{
    RoutingTree a(Point{0, 0});
    a.mark_sink(a.attach_path(a.root(), {{5, 0}, {5, 5}}));
    RoutingTree b(Point{0, 0});
    const NodeId m = b.add_child(b.root(), Point{3, 0});
    const NodeId m2 = b.add_child(m, Point{5, 0});
    b.mark_sink(b.attach_path(m2, {{5, 5}}));
    EXPECT_TRUE(same_geometry(a, b));
    RoutingTree c(Point{0, 0});
    c.mark_sink(c.attach_path(c.root(), {{0, 5}, {5, 5}}));
    EXPECT_FALSE(same_geometry(a, c));
}

TEST(Transform, SubdividedWiresizingNeverWorse)
{
    // Finer granularity can only help the optimal assignment (whole-segment
    // assignments are a subset of subdivided ones).
    const Technology tech = mcm_technology();
    const Net net{{0, 0}, {{2000, 600}, {300, 2500}, {1500, 1500}}};
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition coarse(tree);
    const RoutingTree fine_tree = subdivide_edges(tree, 250);
    const SegmentDecomposition fine(fine_tree);
    const WidthSet ws = WidthSet::uniform_steps(3);
    const WiresizeContext cc(coarse, tech, ws);
    const WiresizeContext cf(fine, tech, ws);
    // Uniform-width delay is identical at any granularity.
    EXPECT_NEAR(cc.delay(min_assignment(coarse.count())),
                cf.delay(min_assignment(fine.count())), 1e-20);
}

}  // namespace
}  // namespace cong93
