// Batch pipeline & flat-kernel tests: FlatTree compilation invariants,
// flat-vs-reference evaluator bit-identity (Elmore, RPH terms, wiresize
// delay/theta-phi, moments, GREWSA fixpoints), thread-pool exception
// propagation, chunked-dynamic-scheduling coverage, multi-thread
// determinism of route_batch, and workspace arena reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>

#include "atree/generalized.h"
#include "batch/batch.h"
#include "batch/pipeline.h"
#include "batch/workspace.h"
#include "delay/elmore.h"
#include "delay/rph.h"
#include "netgen/netgen.h"
#include "rtree/flat_tree.h"
#include "rtree/metrics.h"
#include "rtree/segments.h"
#include "sim/moments.h"
#include "sim/rc_tree.h"
#include "simd/dispatch.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"

namespace cong93 {
namespace {

std::vector<RoutingTree> random_atrees(std::uint64_t seed, int count, int sinks)
{
    std::vector<RoutingTree> trees;
    for (const Net& net : random_nets(seed, count, kMcmGrid, sinks))
        trees.push_back(build_atree_general(net).tree);
    return trees;
}

// ---------------------------------------------------------------------------
// FlatTree compilation
// ---------------------------------------------------------------------------

TEST(FlatTree, MirrorsRoutingTreeStructure)
{
    for (const RoutingTree& tree : random_atrees(11, 4, 13)) {
        const FlatTree ft(tree);
        ASSERT_EQ(ft.size(), tree.node_count());
        EXPECT_EQ(ft.total_length(), total_length(tree));

        // Flat index 0 is the root; parents precede children (preorder).
        EXPECT_EQ(ft.parent()[0], -1);
        for (std::size_t i = 1; i < ft.size(); ++i) {
            ASSERT_GE(ft.parent()[i], 0);
            EXPECT_LT(ft.parent()[i], static_cast<std::int32_t>(i));
        }

        // Per-node fields round-trip through the node_of mapping.
        for (std::size_t i = 0; i < ft.size(); ++i) {
            const NodeId id = ft.node_of()[i];
            EXPECT_EQ(ft.flat_of(id), static_cast<std::int32_t>(i));
            EXPECT_EQ(ft.edge_length()[i], tree.edge_length(id));
            EXPECT_EQ(ft.path_length()[i], tree.path_length(id));
            EXPECT_EQ(ft.is_sink()[i] != 0, tree.node(id).is_sink);
        }

        // CSR children match the tree's children, in order.
        for (std::size_t i = 0; i < ft.size(); ++i) {
            const auto& kids = tree.node(ft.node_of()[i]).children;
            const std::int32_t lo = ft.child_ptr()[i];
            const std::int32_t hi = ft.child_ptr()[i + 1];
            ASSERT_EQ(static_cast<std::size_t>(hi - lo), kids.size());
            for (std::int32_t k = lo; k < hi; ++k)
                EXPECT_EQ(ft.node_of()[static_cast<std::size_t>(ft.child_idx()[k])],
                          kids[static_cast<std::size_t>(k - lo)]);
        }

        // Sinks are listed in RoutingTree::sinks() order.
        const auto sinks = tree.sinks();
        ASSERT_EQ(ft.sinks().size(), sinks.size());
        for (std::size_t k = 0; k < sinks.size(); ++k)
            EXPECT_EQ(ft.node_of()[static_cast<std::size_t>(ft.sinks()[k])],
                      sinks[k]);
    }
}

TEST(FlatTree, RebuildReusesCapacity)
{
    const auto trees = random_atrees(12, 6, 17);
    FlatTree ft;
    for (const RoutingTree& t : trees) ft.build(t);
    const std::uint64_t growths_after_warmup = ft.growths();
    for (const RoutingTree& t : trees) ft.build(t);
    EXPECT_EQ(ft.builds(), 2 * trees.size());
    // Second pass over the same trees never exceeds the high-water mark.
    EXPECT_EQ(ft.growths(), growths_after_warmup);
}

TEST(RoutingTree, BufferReuseOverloadsMatch)
{
    for (const RoutingTree& tree : random_atrees(13, 3, 9)) {
        std::vector<NodeId> buf{42};  // stale contents must be cleared
        tree.preorder(buf);
        EXPECT_EQ(buf, tree.preorder());
        tree.sinks(buf);
        EXPECT_EQ(buf, tree.sinks());
    }
}

// ---------------------------------------------------------------------------
// Flat kernels vs reference twins (bit-identical); the twins live in the
// cong_oracles target, so this section needs CONG93_BUILD_ORACLES=ON.
// ---------------------------------------------------------------------------

#ifdef CONG93_HAVE_ORACLES

TEST(FlatKernels, ElmoreBitIdenticalToReference)
{
    // The oracle anchor is defined against the seed kernels, i.e. scalar
    // dispatch; relaxed/vectorized equivalence lives in test_simd_kernels.
    ScopedSimdMode scalar_mode(SimdMode::scalar);
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(21, 6, 15)) {
        const auto flat = elmore_all_sinks(tree, tech);
        const auto ref = elmore_all_sinks_reference(tree, tech);
        ASSERT_EQ(flat.size(), ref.size());
        for (std::size_t i = 0; i < flat.size(); ++i)
            EXPECT_EQ(flat[i], ref[i]) << "sink " << i;
    }
}

TEST(FlatKernels, RphTermsBitIdenticalToReference)
{
    ScopedSimdMode scalar_mode(SimdMode::scalar);
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(22, 6, 15)) {
        const RphTerms flat = rph_terms(tree, tech);
        const RphTerms ref = rph_terms_reference(tree, tech);
        EXPECT_EQ(flat.t1, ref.t1);
        EXPECT_EQ(flat.t2, ref.t2);
        EXPECT_EQ(flat.t3, ref.t3);
        EXPECT_EQ(flat.t4, ref.t4);
        // And the closed forms still agree with the grid-node walk.
        EXPECT_NEAR(flat.total(), rph_delay_bruteforce(tree, tech),
                    1e-12 * flat.total());
    }
}

TEST(FlatKernels, WiresizeDelayAndTermsBitIdentical)
{
    const Technology tech = mcm_technology();
    std::mt19937_64 rng(23);
    for (const RoutingTree& tree : random_atrees(23, 5, 12)) {
        const SegmentDecomposition segs(tree);
        const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
        for (int trial = 0; trial < 8; ++trial) {
            Assignment a(segs.count());
            for (auto& w : a) w = static_cast<int>(rng() % 4);
            EXPECT_EQ(ctx.delay(a), ctx.delay_reference(a));
            const auto ft = ctx.terms(a);
            const auto rt = ctx.terms_reference(a);
            EXPECT_EQ(ft.t1, rt.t1);
            EXPECT_EQ(ft.t2, rt.t2);
            EXPECT_EQ(ft.t3, rt.t3);
            EXPECT_EQ(ft.t4, rt.t4);
            const std::size_t i = rng() % segs.count();
            const auto ftp = ctx.theta_phi_fast(a, i);
            const auto rtp = ctx.theta_phi_fast_reference(a, i);
            EXPECT_EQ(ftp.theta, rtp.theta);
            EXPECT_EQ(ftp.phi, rtp.phi);
        }
    }
}

TEST(FlatKernels, MomentsBitIdenticalToReference)
{
    // Oracle anchor: the scalar ISA reproduces the seed moment recursion bit
    // for bit.  Relaxed vectorized modes reassociate the chain scans and are
    // covered by ULP-bounded equivalence in test_simd_kernels.
    ScopedSimdMode scalar_mode(SimdMode::scalar);
    const Technology tech = mcm_technology();
    MomentWorkspace ws;
    for (const RoutingTree& tree : random_atrees(24, 4, 10)) {
        const RcTree rc = RcTree::from_routing_tree(tree, tech, 8);
        const auto& flat = compute_moments(rc, 3, ws);
        const auto ref = compute_moments_reference(rc, 3);
        for (int q = 0; q < 3; ++q)
            for (std::size_t i = 0; i < rc.size(); ++i)
                EXPECT_EQ(flat[static_cast<std::size_t>(q)][i],
                          ref[static_cast<std::size_t>(q)][i])
                    << "order " << q << " node " << i;
    }
    // Re-evaluating a same-size problem must not grow the scratch.
    const std::uint64_t growths = ws.growths;
    const RcTree rc =
        RcTree::from_routing_tree(random_atrees(24, 1, 10)[0], tech, 8);
    compute_moments(rc, 3, ws);
    EXPECT_EQ(ws.growths, growths);
    EXPECT_EQ(ws.evals, 5u);
}

TEST(FlatKernels, GrewsaFixpointBitIdenticalToReference)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(25, 4, 14)) {
        const SegmentDecomposition segs(tree);
        const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
        const GrewsaResult fast = grewsa_from_min(ctx);
        const GrewsaResult ref =
            grewsa_reference(ctx, min_assignment(segs.count()));
        EXPECT_EQ(fast.assignment, ref.assignment);
        EXPECT_EQ(fast.delay, ref.delay);
        EXPECT_EQ(fast.sweeps, ref.sweeps);
    }
}

#endif  // CONG93_HAVE_ORACLES

// ---------------------------------------------------------------------------
// Thread pool: exception propagation & dynamic scheduling
// ---------------------------------------------------------------------------

TEST(ThreadPool, WorkerExceptionRethrownOnSubmitter)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        parallel_for_index(pool, 64,
                           [](std::size_t i) {
                               if (i == 17)
                                   throw std::runtime_error("boom at 17");
                           }),
        std::runtime_error);
    // The pool survives and is reusable after a failure.
    std::atomic<int> ran{0};
    parallel_for_index(pool, 8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, BatchMapPropagatesExceptions)
{
    EXPECT_THROW(batch_map<int>(
                     32,
                     [](std::size_t i) -> int {
                         if (i == 5) throw std::invalid_argument("bad net");
                         return static_cast<int>(i);
                     },
                     4),
                 std::invalid_argument);
}

TEST(ThreadPool, ChunkedSlotsCoverEveryIndexOnce)
{
    for (const std::size_t chunk : {1u, 3u, 7u, 100u}) {
        ThreadPool pool(4);
        constexpr std::size_t kN = 97;
        std::vector<std::atomic<int>> hits(kN);
        std::vector<std::atomic<int>> slot_of(kN);
        for (std::size_t i = 0; i < kN; ++i) {
            hits[i] = 0;
            slot_of[i] = -1;
        }
        parallel_for_slots(
            pool, kN,
            [&](std::size_t i, int slot) {
                ++hits[i];
                slot_of[i] = slot;
            },
            chunk);
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
            EXPECT_GE(slot_of[i].load(), 0);
            EXPECT_LT(slot_of[i].load(), 4);
        }
    }
}

// ---------------------------------------------------------------------------
// route_batch: determinism, reuse, reporting
// ---------------------------------------------------------------------------

TEST(Pipeline, ParallelByteIdenticalToSerial)
{
    const Technology tech = mcm_technology();
    const auto nets = random_nets(31, 10, kMcmGrid, 9);

    PipelineOptions serial;
    serial.threads = 1;
    const auto base = format_results(route_batch(nets, tech, serial));
    EXPECT_FALSE(base.empty());

    for (const int threads : {2, 4}) {
        for (const std::size_t chunk : {1u, 3u}) {
            PipelineOptions par;
            par.threads = threads;
            par.chunk = chunk;
            PipelineStats stats;
            const auto out = format_results(route_batch(nets, tech, par, &stats));
            EXPECT_EQ(out, base) << "threads=" << threads << " chunk=" << chunk;
            EXPECT_EQ(stats.threads, threads);
            EXPECT_GT(stats.nets_per_sec, 0.0);
        }
    }
}

TEST(Pipeline, HonoursEnvironmentThreadCount)
{
    // The default thread count comes from CONG93_THREADS (the CI matrix runs
    // the whole suite under CONG93_THREADS=4); whatever it resolves to, the
    // results must match the serial run byte for byte.
    const Technology tech = mcm_technology();
    const auto nets = random_nets(32, 6, kMcmGrid, 7);
    PipelineOptions defaults;  // threads = 0 -> default_thread_count()
    PipelineOptions serial;
    serial.threads = 1;
    PipelineStats stats;
    const auto out = format_results(route_batch(nets, tech, defaults, &stats));
    EXPECT_EQ(out, format_results(route_batch(nets, tech, serial)));
    EXPECT_EQ(stats.threads, default_thread_count());
}

TEST(Pipeline, WorkspaceArenaIsReusedAcrossBatches)
{
    const Technology tech = mcm_technology();
    const auto nets = random_nets(33, 8, kMcmGrid, 8);
    PipelineOptions opts;
    opts.threads = 1;  // one workspace sees every net -> exact reuse check

    std::vector<Workspace> ws;
    PipelineStats first, second;
    route_batch(nets, tech, opts, &first, &ws);
    route_batch(nets, tech, opts, &second, &ws);

    EXPECT_EQ(first.counters.tree_builds, nets.size());
    EXPECT_EQ(second.counters.tree_builds, 2 * nets.size());
    // The warmed-up arena never touches the allocator again: no buffer of
    // the second batch outgrew the first batch's high-water mark.
    EXPECT_EQ(second.counters.tree_growths, first.counters.tree_growths);
    EXPECT_EQ(second.counters.moment_growths, first.counters.moment_growths);
    EXPECT_EQ(second.counters.scratch_growths, first.counters.scratch_growths);
}

TEST(Pipeline, ReportsConsistentDelays)
{
    const Technology tech = mcm_technology();
    PipelineStats stats;
    const auto results = route_batch(41, 5, kMcmGrid, 8, tech, {}, &stats);
    ASSERT_EQ(results.size(), 5u);
    for (const NetRouteResult& r : results) {
        EXPECT_GT(r.nodes, 8u);
        EXPECT_GT(r.segments, 0u);
        EXPECT_GT(r.wirelength, 0);
        // RPH bound dominates the Elmore delay at every sink.
        EXPECT_GE(r.rph_s, r.elmore_max_s);
        EXPECT_GT(r.elmore_max_s, 0.0);
        // Optimal wiresizing cannot be worse than the uniform-width bound
        // (delay(f_lower) reduces to Eq. 2; allow for the code-path epsilon).
        EXPECT_LE(r.wiresized_delay_s, r.rph_s * (1.0 + 1e-9));
        EXPECT_GT(r.wiresized_delay_s, 0.0);
        EXPECT_GT(r.moment_elmore_max_s, 0.0);
        EXPECT_EQ(r.assignment.size(), r.segments);
    }
    EXPECT_EQ(stats.counters.tree_builds, 5u);
    EXPECT_EQ(stats.counters.moment_evals, 5u);
}

TEST(Pipeline, EmptyAndDegenerateBatches)
{
    const Technology tech = mcm_technology();
    EXPECT_TRUE(route_batch(std::vector<Net>{}, tech).empty());

    // Single-sink nets exercise the smallest trees end to end.
    const auto results = route_batch(43, 3, kMcmGrid, 1, tech);
    ASSERT_EQ(results.size(), 3u);
    for (const NetRouteResult& r : results) EXPECT_GT(r.wiresized_delay_s, 0.0);
}

}  // namespace
}  // namespace cong93
