#include <gtest/gtest.h>

#include <cmath>

#include "atree/atree.h"
#include "delay/elmore.h"
#include "netgen/netgen.h"
#include "sim/delay_measure.h"
#include "sim/moments.h"
#include "sim/transient.h"
#include "sim/two_pole.h"

namespace cong93 {
namespace {

/// Simple lumped RC: driver Rd into a single capacitor C.
RcTree single_rc(double rd, double c)
{
    std::vector<RcTree::RcNode> nodes(1);
    nodes[0].parent = -1;
    nodes[0].r_ohm = rd;
    nodes[0].c_f = c;
    return RcTree(std::move(nodes));
}

/// Two-stage ladder: Rd -> C1 -> R2 -> C2.
RcTree ladder2(double rd, double c1, double r2, double c2)
{
    std::vector<RcTree::RcNode> nodes(2);
    nodes[0] = {-1, rd, c1};
    nodes[1] = {0, r2, c2};
    return RcTree(std::move(nodes));
}

TEST(RcTree, Validation)
{
    EXPECT_THROW(RcTree({}), std::invalid_argument);
    std::vector<RcTree::RcNode> bad(2);
    bad[0] = {-1, 10.0, 1e-12};
    bad[1] = {1, 10.0, 1e-12};  // parent does not precede child
    EXPECT_THROW(RcTree(std::move(bad)), std::invalid_argument);
}

TEST(Moments, SingleRcFirstAndSecond)
{
    // H(s) = 1/(1+RCs): m1 = -RC, m2 = (RC)^2.
    const double rd = 100.0, c = 2e-12;
    const RcTree rc = single_rc(rd, c);
    const auto m = compute_moments(rc, 3);
    EXPECT_NEAR(m[0][0], -rd * c, 1e-18);
    EXPECT_NEAR(m[1][0], rd * c * rd * c, 1e-30);
    EXPECT_NEAR(m[2][0], -std::pow(rd * c, 3.0), 1e-42);
}

TEST(Moments, LadderElmore)
{
    const double rd = 50.0, c1 = 1e-12, r2 = 200.0, c2 = 3e-12;
    const RcTree rc = ladder2(rd, c1, r2, c2);
    const auto elm = rc_elmore_delays(rc);
    EXPECT_NEAR(elm[0], rd * (c1 + c2), 1e-18);
    EXPECT_NEAR(elm[1], rd * (c1 + c2) + r2 * c2, 1e-18);
}

TEST(Moments, MatchElmoreModuleOnRoutingTrees)
{
    const Technology tech = mcm_technology();
    const Net net{{0, 0}, {{300, 100}, {50, 400}, {220, 260}}};
    const AtreeResult r = build_atree(net);
    // Many sections per edge -> the lumped Elmore converges to the
    // distributed closed form of delay/elmore.h.
    const RcTree rc = RcTree::from_routing_tree(r.tree, tech, 64);
    const auto elm = rc_elmore_delays(rc);
    const auto expected = elmore_all_sinks(r.tree, tech);
    const auto sinks = rc.sink_nodes();
    ASSERT_EQ(sinks.size(), expected.size());
    for (std::size_t i = 0; i < sinks.size(); ++i) {
        const double got = elm[static_cast<std::size_t>(sinks[i])];
        EXPECT_NEAR(got, expected[i], 0.002 * expected[i]);
    }
}

TEST(TwoPole, SinglePoleFallback)
{
    // Exactly one pole: b2 = m1^2 - m2 = 0 -> single-pole response.
    const double rc = 1e-9;
    const TwoPole tp = fit_two_pole(-rc, rc * rc);
    EXPECT_NEAR(tp.b2, 0.0, 1e-30);
    const double t50 = two_pole_threshold_delay(tp, 0.5);
    EXPECT_NEAR(t50, rc * std::log(2.0), 1e-3 * rc);
}

TEST(TwoPole, ResponseShape)
{
    const TwoPole tp{2e-9, 0.5e-18};
    EXPECT_DOUBLE_EQ(two_pole_response(tp, 0.0), 0.0);
    EXPECT_NEAR(two_pole_response(tp, 1e-6), 1.0, 1e-6);
    // Monotone for real poles.
    double prev = -1.0;
    for (int i = 1; i <= 50; ++i) {
        const double v = two_pole_response(tp, i * 0.2e-9);
        EXPECT_GE(v, prev);
        prev = v;
    }
    // Threshold delays are ordered.
    EXPECT_LT(two_pole_threshold_delay(tp, 0.5), two_pole_threshold_delay(tp, 0.9));
}

TEST(TwoPole, MatchesTransientOnLadder)
{
    const RcTree rc = ladder2(50.0, 1e-12, 200.0, 3e-12);
    const auto m = compute_moments(rc, 2);
    const TwoPole tp = fit_two_pole(m[0][1], m[1][1]);
    const double t_tp = two_pole_threshold_delay(tp, 0.5);
    // Transient reference at the far node.
    std::vector<RcTree::RcNode> copy = rc.nodes();
    RcTree rc2(std::move(copy));
    TransientSim sim(rc2, 1e-13);
    double t_tr = 0.0;
    double prev = 0.0;
    while (sim.voltage(1) < 0.5) {
        prev = sim.voltage(1);
        sim.step(1.0);
        t_tr = sim.time();
    }
    // Interpolate.
    const double cur = sim.voltage(1);
    t_tr -= (cur - 0.5) / (cur - prev) * 1e-13;
    EXPECT_NEAR(t_tp, t_tr, 0.05 * t_tr);  // two poles: exact for a 2-node ladder
}

TEST(Transient, SingleRcAnalytic)
{
    const double rd = 100.0, c = 2e-12;
    const RcTree rc = single_rc(rd, c);
    const double tau = rd * c;
    TransientSim sim(rc, tau / 2000.0);
    while (sim.time() < tau) sim.step(1.0);
    EXPECT_NEAR(sim.voltage(0), 1.0 - std::exp(-1.0), 2e-3);
}

TEST(Transient, SinkDelaysCloseToTwoPole)
{
    const Technology tech = mcm_technology();
    const auto nets = random_nets(55, 3, kMcmGrid, 6);
    for (const Net& net : nets) {
        Net shifted = net;  // make first-quadrant relative net via general...
        const AtreeResult r = [&] {
            // Use the generalized entry through atree.h would need another
            // include; simply reflect sinks into the first quadrant.
            Net fq;
            fq.source = Point{0, 0};
            for (const Point s : net.sinks)
                fq.sinks.push_back(Point{static_cast<Coord>(std::abs(s.x - net.source.x)),
                                         static_cast<Coord>(std::abs(s.y - net.source.y))});
            return build_atree(fq);
        }();
        const RcTree rc = RcTree::from_routing_tree(r.tree, tech, 8);
        const auto tp = two_pole_sink_delays(rc, 0.5);
        const auto tr = transient_sink_delays(rc, 0.5);
        ASSERT_EQ(tp.size(), tr.size());
        // The two-pole fit is tight for the dominant (far) sinks and known
        // to overestimate electrically-near sinks (zero-initial-slope
        // artifact); check accordingly.
        double tp_mean = 0.0, tr_mean = 0.0, tp_max = 0.0, tr_max = 0.0;
        for (std::size_t i = 0; i < tp.size(); ++i) {
            tp_mean += tp[i] / static_cast<double>(tp.size());
            tr_mean += tr[i] / static_cast<double>(tr.size());
            tp_max = std::max(tp_max, tp[i]);
            tr_max = std::max(tr_max, tr[i]);
        }
        EXPECT_NEAR(tp_max, tr_max, 0.10 * tr_max) << "far-sink delay diverges";
        EXPECT_NEAR(tp_mean, tr_mean, 0.20 * tr_mean) << "mean delay diverges";
        for (std::size_t i = 0; i < tp.size(); ++i)
            EXPECT_NEAR(tp[i], tr[i], 0.35 * tr_mean + 1e-12)
                << "two-pole vs transient diverge at sink " << i;
        (void)shifted;
    }
}

TEST(Transient, WaveformsReachSteadyState)
{
    const RcTree rc = ladder2(50.0, 1e-12, 200.0, 3e-12);
    const auto wf = transient_waveforms(rc, {0, 1}, 0.95);
    ASSERT_EQ(wf.size(), 2u);
    EXPECT_GE(wf[0].value.back(), 0.95);
    EXPECT_GE(wf[1].value.back(), 0.95);
    // Node 1 lags node 0.
    EXPECT_LE(wf[1].value.front(), wf[0].value.front() + 1e-12);
}

TEST(DelayMeasure, WiresizedFasterThanUniform)
{
    // Wider stems must reduce the simulated delay too (Figure 4's claim,
    // checked with the simulator rather than the RPH objective).
    const Technology tech = mcm_technology();
    RoutingTree t(Point{200, 0});
    const NodeId mid = t.add_child(t.root(), Point{200, 150});
    t.mark_sink(t.add_child(mid, Point{0, 150}));
    t.mark_sink(t.add_child(mid, Point{400, 150}));
    const SegmentDecomposition segs(t);
    const WidthSet ws = WidthSet::uniform_steps(2);
    const std::size_t stem = static_cast<std::size_t>(segs.roots()[0]);
    Assignment uniform(3, 0);
    Assignment wide_stem(3, 0);
    wide_stem[stem] = 1;

    const auto d_uniform =
        measure_delay_wiresized(segs, tech, ws, uniform, SimMethod::two_pole);
    const auto d_wide =
        measure_delay_wiresized(segs, tech, ws, wide_stem, SimMethod::two_pole);
    EXPECT_LT(d_wide.mean, d_uniform.mean);
}

TEST(DelayMeasure, UniformEntryPoints)
{
    const Technology tech = mcm_technology();
    const Net net{{0, 0}, {{500, 300}, {100, 900}}};
    const AtreeResult r = build_atree(net);
    const auto d2 = measure_delay(r.tree, tech, SimMethod::two_pole);
    const auto dt = measure_delay(r.tree, tech, SimMethod::transient);
    ASSERT_EQ(d2.sink_delays.size(), 2u);
    EXPECT_GT(d2.mean, 0.0);
    EXPECT_NEAR(d2.mean, dt.mean, 0.15 * dt.mean);
    EXPECT_GE(d2.max, d2.mean);
}

}  // namespace
}  // namespace cong93
