// Canonical-IR equivalence suite: every layer downstream of topology
// construction (sim, metrics, report, rendering, wiresizing) consumes the
// FlatTree, and this file pins each ported consumer to its predecessor with
// exact comparisons -- no epsilons anywhere:
//   * RoutingTree shims vs the native FlatTree overloads (always built);
//   * flat-built WiresizeContext vs the SegmentDecomposition-built one,
//     array by array and through every evaluation entry point;
//   * the cong_oracles pointer-walk twins (RcTree construction, simulator
//     outputs, all five metrics, SVG bytes) when CONG93_BUILD_ORACLES=ON;
//   * the pipeline's one-compile-per-net guarantee via
//     PipelineStats::compiles_per_net.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "atree/generalized.h"
#include "batch/pipeline.h"
#include "batch/workspace.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/flat_tree.h"
#include "rtree/metrics.h"
#include "rtree/segments.h"
#include "rtree/svg.h"
#include "sim/delay_measure.h"
#include "sim/rc_tree.h"
#include "sim/transient.h"
#include "sim/two_pole.h"
#include "tech/technology.h"
#include "wiresize/assignment.h"
#include "wiresize/combined.h"
#include "wiresize/delay_eval.h"

namespace cong93 {
namespace {

std::vector<RoutingTree> random_atrees(std::uint64_t seed, int count, int sinks)
{
    std::vector<RoutingTree> trees;
    for (const Net& net : random_nets(seed, count, kMcmGrid, sinks))
        trees.push_back(build_atree_general(net).tree);
    return trees;
}

void expect_rc_equal(const RcTree& a, const RcTree& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.node(i).parent, b.node(i).parent) << "node " << i;
        EXPECT_EQ(a.node(i).r_ohm, b.node(i).r_ohm) << "node " << i;
        EXPECT_EQ(a.node(i).c_f, b.node(i).c_f) << "node " << i;
        EXPECT_EQ(a.node(i).l_h, b.node(i).l_h) << "node " << i;
    }
    EXPECT_EQ(a.sink_nodes(), b.sink_nodes());
}

// ---------------------------------------------------------------------------
// RoutingTree shims vs the native FlatTree entry points (oracle-free: these
// must hold in a CONG93_BUILD_ORACLES=OFF build too).
// ---------------------------------------------------------------------------

TEST(FlatIr, MetricShimsMatchFlatOverloads)
{
    for (const RoutingTree& tree : random_atrees(301, 6, 11)) {
        const FlatTree ft(tree);
        EXPECT_EQ(total_length(tree), total_length(ft));
        EXPECT_EQ(sum_sink_path_lengths(tree), sum_sink_path_lengths(ft));
        EXPECT_EQ(sum_all_node_path_lengths(tree), sum_all_node_path_lengths(ft));
        EXPECT_EQ(radius(tree), radius(ft));
        EXPECT_EQ(mdrt_cost(tree, 1.0, 0.5, 0.25), mdrt_cost(ft, 1.0, 0.5, 0.25));
    }
}

TEST(FlatIr, RcTreeShimMatchesFlatBuilder)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(302, 4, 9)) {
        const FlatTree ft(tree);
        for (const bool rlc : {false, true}) {
            expect_rc_equal(RcTree::from_routing_tree(tree, tech, 16, rlc),
                            RcTree::from_flat_tree(ft, tech, 16, rlc));
        }
    }
}

TEST(FlatIr, MeasureDelayShimMatchesFlatOverload)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(303, 3, 8)) {
        const FlatTree ft(tree);
        for (const SimMethod m : {SimMethod::two_pole, SimMethod::transient}) {
            const DelayReport a = measure_delay(tree, tech, m);
            const DelayReport b = measure_delay(ft, tech, m);
            EXPECT_EQ(a.sink_delays, b.sink_delays);
            EXPECT_EQ(a.mean, b.mean);
            EXPECT_EQ(a.max, b.max);
        }
    }
}

TEST(FlatIr, SvgShimMatchesFlatRenderer)
{
    for (const RoutingTree& tree : random_atrees(304, 3, 7)) {
        const FlatTree ft(tree);
        EXPECT_EQ(to_svg(tree), to_svg(ft));
    }
}

TEST(FlatIr, SummarizeNetMatchesMetrics)
{
    for (const RoutingTree& tree : random_atrees(305, 4, 10)) {
        const FlatTree ft(tree);
        const NetSummary s = summarize_net(ft);
        EXPECT_EQ(s.nodes, tree.node_count());
        EXPECT_EQ(s.sinks, tree.sinks().size());
        EXPECT_EQ(s.length, total_length(tree));
        EXPECT_EQ(s.radius, radius(tree));
        EXPECT_EQ(s.sum_sink_path_lengths, sum_sink_path_lengths(tree));
    }
}

// ---------------------------------------------------------------------------
// Flat-built WiresizeContext vs the SegmentDecomposition-built one
// ---------------------------------------------------------------------------

TEST(FlatIr, WiresizeContextFlatBuildMatchesLegacyArrays)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(306, 5, 12)) {
        const FlatTree ft(tree);
        const SegmentDecomposition segs(tree);
        const WiresizeContext legacy(segs, tech, WidthSet::uniform_steps(4));
        const WiresizeContext flat(ft, tech, WidthSet::uniform_steps(4));

        ASSERT_EQ(flat.segment_count(), legacy.segment_count());
        EXPECT_EQ(flat.seg_parent(), legacy.seg_parent());
        EXPECT_EQ(flat.seg_length(), legacy.seg_length());
        EXPECT_EQ(flat.seg_child_ptr(), legacy.seg_child_ptr());
        EXPECT_EQ(flat.seg_child_idx(), legacy.seg_child_idx());
        EXPECT_EQ(flat.seg_roots(), legacy.seg_roots());
        EXPECT_EQ(flat.tail_is_sink(), legacy.tail_is_sink());
        for (std::size_t i = 0; i < flat.segment_count(); ++i) {
            EXPECT_EQ(flat.tail_cap(i), legacy.tail_cap(i)) << "segment " << i;
            EXPECT_EQ(flat.downstream_sink_cap(i), legacy.downstream_sink_cap(i))
                << "segment " << i;
        }

        // Provenance accessors: exactly one origin each.
        EXPECT_EQ(flat.flat(), &ft);
        EXPECT_EQ(legacy.flat(), nullptr);
        EXPECT_EQ(&legacy.segs(), &segs);
        EXPECT_THROW(flat.segs(), std::logic_error);
        EXPECT_FALSE(flat.seg_tail_flat().empty());
        EXPECT_TRUE(legacy.seg_tail_flat().empty());

        // seg_tail_flat points at the actual tail nodes: a sink tail is a
        // sink node, and the tail's path length equals the segment's span.
        for (std::size_t i = 0; i < flat.segment_count(); ++i) {
            const auto tail = static_cast<std::size_t>(flat.seg_tail_flat()[i]);
            ASSERT_LT(tail, ft.size());
            EXPECT_EQ(flat.tail_is_sink()[i] != 0, ft.is_sink()[tail] != 0);
        }
    }
}

TEST(FlatIr, WiresizeContextFlatBuildMatchesLegacyEvaluation)
{
    const Technology tech = mcm_technology();
    for (const std::uint64_t seed : {41u, 42u, 43u}) {
        for (const RoutingTree& tree : random_atrees(seed, 2, 14)) {
            const FlatTree ft(tree);
            const SegmentDecomposition segs(tree);
            const WiresizeContext legacy(segs, tech, WidthSet::uniform_steps(4));
            const WiresizeContext flat(ft, tech, WidthSet::uniform_steps(4));
            const std::size_t n = flat.segment_count();

            std::mt19937_64 rng(seed * 1000003);
            for (int trial = 0; trial < 4; ++trial) {
                Assignment a(n, 0);
                for (std::size_t i = 0; i < n; ++i)
                    a[i] = static_cast<int>(rng() % 4);

                EXPECT_EQ(flat.delay(a), legacy.delay(a));
                const auto tf = flat.terms(a);
                const auto tl = legacy.terms(a);
                EXPECT_EQ(tf.t1, tl.t1);
                EXPECT_EQ(tf.t2, tl.t2);
                EXPECT_EQ(tf.t3, tl.t3);
                EXPECT_EQ(tf.t4, tl.t4);
                for (std::size_t i = 0; i < n; ++i) {
                    const auto pf = flat.theta_phi_fast(a, i);
                    const auto pl = legacy.theta_phi_fast(a, i);
                    EXPECT_EQ(pf.theta, pl.theta) << "segment " << i;
                    EXPECT_EQ(pf.phi, pl.phi) << "segment " << i;
                    EXPECT_EQ(flat.locally_optimal_width(a, i, 3),
                              legacy.locally_optimal_width(a, i, 3));
                }
            }

            // The full combined optimization reaches the same fixpoint.
            const CombinedResult cf = grewsa_owsa(flat);
            const CombinedResult cl = grewsa_owsa(legacy);
            EXPECT_EQ(cf.assignment, cl.assignment);
            EXPECT_EQ(cf.delay, cl.delay);
        }
    }
}

TEST(FlatIr, WiresizedRcTreeFlatMatchesLegacy)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(307, 3, 10)) {
        const FlatTree ft(tree);
        const SegmentDecomposition segs(tree);
        const WidthSet widths = WidthSet::uniform_steps(4);
        const WiresizeContext flat(ft, tech, widths);
        const WiresizeContext legacy(segs, tech, widths);
        const Assignment a = grewsa_owsa(flat).assignment;

        for (const bool rlc : {false, true}) {
            expect_rc_equal(
                RcTree::from_wiresized_flat(flat, a, 8, rlc),
                RcTree::from_wiresized_tree(segs, tech, widths, a, 8, rlc));
        }
        // from_wiresized_flat needs the originating FlatTree.
        EXPECT_THROW(RcTree::from_wiresized_flat(legacy, a), std::logic_error);

        for (const SimMethod m : {SimMethod::two_pole, SimMethod::transient}) {
            const DelayReport df = measure_delay_wiresized(flat, a, m);
            const DelayReport dl = measure_delay_wiresized(segs, tech, widths, a, m);
            EXPECT_EQ(df.sink_delays, dl.sink_delays);
            EXPECT_EQ(df.mean, dl.mean);
            EXPECT_EQ(df.max, dl.max);
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline: the stage-2 compile is the only compile
// ---------------------------------------------------------------------------

TEST(FlatIr, PipelineCompilesEachNetExactlyOnce)
{
    const Technology tech = mcm_technology();
    PipelineOptions opts;
    opts.threads = 1;
    PipelineStats serial;
    const auto r1 = route_batch(97, 24, kMcmGrid, 9, tech, opts, &serial);
    EXPECT_EQ(serial.compiles_per_net, 1.0);

    opts.threads = 4;
    PipelineStats threaded;
    const auto r4 = route_batch(97, 24, kMcmGrid, 9, tech, opts, &threaded);
    EXPECT_EQ(threaded.compiles_per_net, 1.0);

    // Still byte-identical across thread counts with the shared compile.
    EXPECT_EQ(format_results(r1), format_results(r4));
}

TEST(FlatIr, PipelineCompileCounterIsPerBatchDelta)
{
    // Reused workspaces carry tree_builds across batches; compiles_per_net
    // must measure only the current batch.
    const Technology tech = mcm_technology();
    PipelineOptions opts;
    opts.threads = 2;
    std::vector<Workspace> ws;
    for (int round = 0; round < 3; ++round) {
        PipelineStats stats;
        route_batch(500 + static_cast<std::uint64_t>(round), 10, kMcmGrid, 7,
                    tech, opts, &stats, &ws);
        EXPECT_EQ(stats.compiles_per_net, 1.0) << "round " << round;
    }
}

#ifdef CONG93_HAVE_ORACLES
// ---------------------------------------------------------------------------
// Pointer-walk oracles (cong_oracles target)
// ---------------------------------------------------------------------------

TEST(FlatIrOracle, RcTreeBitIdenticalToPointerWalk)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(401, 5, 12)) {
        const FlatTree ft(tree);
        for (const int sections : {4, 16}) {
            for (const bool rlc : {false, true}) {
                expect_rc_equal(
                    RcTree::from_flat_tree(ft, tech, sections, rlc),
                    RcTree::from_routing_tree_reference(tree, tech, sections, rlc));
            }
        }
    }
}

TEST(FlatIrOracle, SimulatorsBitIdenticalThroughFlatBuiltRc)
{
    const Technology tech = mcm_technology();
    for (const RoutingTree& tree : random_atrees(402, 3, 9)) {
        const RcTree flat_rc = RcTree::from_flat_tree(FlatTree(tree), tech);
        const RcTree ref_rc = RcTree::from_routing_tree_reference(tree, tech);

        EXPECT_EQ(two_pole_sink_delays(flat_rc), two_pole_sink_delays(ref_rc));
        EXPECT_EQ(transient_sink_delays(flat_rc), transient_sink_delays(ref_rc));

        // Full waveform sample streams, not just threshold crossings.
        const auto wf = transient_waveforms(flat_rc, flat_rc.sink_nodes());
        const auto wr = transient_waveforms(ref_rc, ref_rc.sink_nodes());
        ASSERT_EQ(wf.size(), wr.size());
        for (std::size_t s = 0; s < wf.size(); ++s) {
            EXPECT_EQ(wf[s].time, wr[s].time) << "sink " << s;
            EXPECT_EQ(wf[s].value, wr[s].value) << "sink " << s;
        }
    }
}

TEST(FlatIrOracle, MetricsBitIdenticalToPointerWalk)
{
    for (const RoutingTree& tree : random_atrees(403, 6, 13)) {
        const FlatTree ft(tree);
        EXPECT_EQ(total_length(ft), total_length_reference(tree));
        EXPECT_EQ(sum_sink_path_lengths(ft), sum_sink_path_lengths_reference(tree));
        EXPECT_EQ(sum_all_node_path_lengths(ft),
                  sum_all_node_path_lengths_reference(tree));
        EXPECT_EQ(radius(ft), radius_reference(tree));
        EXPECT_EQ(mdrt_cost(ft, 1.0, 0.5, 0.25),
                  mdrt_cost_reference(tree, 1.0, 0.5, 0.25));
    }
}

TEST(FlatIrOracle, SvgByteIdenticalToPointerWalk)
{
    for (const RoutingTree& tree : random_atrees(404, 3, 8)) {
        const FlatTree ft(tree);
        EXPECT_EQ(to_svg(ft), to_svg_reference(tree));
        SvgOptions opts;
        opts.pixels = 321.0;
        opts.margin = 7.5;
        opts.base_stroke = 1.25;
        EXPECT_EQ(to_svg(ft, opts), to_svg_reference(tree, opts));
    }
}
#endif  // CONG93_HAVE_ORACLES

}  // namespace
}  // namespace cong93
