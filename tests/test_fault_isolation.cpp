// Fault-isolation tests for the batch routing pipeline: the FaultPlan
// harness itself, the per-net degradation ladder under injected failures at
// every stage, the determinism invariants (serial == parallel byte-identity
// of results *and* diagnostics under fault load; good nets bit-identical to
// a fault-free run), input-validation isolation, the real arena OOM guard,
// and the thread pool's multi-exception aggregation (BatchError).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.h"
#include "batch/errors.h"
#include "batch/fault_inject.h"
#include "batch/lifecycle.h"
#include "batch/pipeline.h"
#include "tech/technology.h"

namespace {

using namespace cong93;

// ---------------------------------------------------------------------------
// FaultPlan: spec parsing and the deterministic per-(stage, net) draw.

TEST(FaultPlan, EmptySpecIsDisabled)
{
    const FaultPlan plan = FaultPlan::parse("");
    EXPECT_FALSE(plan.enabled);
    EXPECT_FALSE(plan.fires(0, RouteStage::topology));
}

TEST(FaultPlan, ParsesFullSpec)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=7,topology=0.25,fallback=0.5,wiresize=0.25,moment=0.1,nan=0.1,"
        "arena-cap=40@0.2");
    EXPECT_TRUE(plan.enabled);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.topology_rate, 0.25);
    EXPECT_DOUBLE_EQ(plan.fallback_rate, 0.5);
    EXPECT_DOUBLE_EQ(plan.wiresize_rate, 0.25);
    EXPECT_DOUBLE_EQ(plan.moment_rate, 0.1);
    EXPECT_DOUBLE_EQ(plan.nan_tech_rate, 0.1);
    EXPECT_EQ(plan.arena_cap_nodes, 40u);
    EXPECT_DOUBLE_EQ(plan.arena_cap_rate, 0.2);
}

TEST(FaultPlan, RejectsMalformedSpecsLoudly)
{
    EXPECT_THROW(FaultPlan::parse("topology"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("bogus=0.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("topology=1.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("topology=-0.1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("topology=abc"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=xyz"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("arena-cap=40"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("arena-cap=n@0.5"), std::invalid_argument);
}

TEST(FaultPlan, DrawsAreDeterministicAndRateBounded)
{
    FaultPlan plan = FaultPlan::parse("seed=11,topology=1.0,wiresize=0.0");
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(plan.fires(i, RouteStage::topology));   // rate 1: always
        EXPECT_FALSE(plan.fires(i, RouteStage::wiresize));  // rate 0: never
        EXPECT_FALSE(plan.fires(i, RouteStage::fallback));  // unconfigured
        // Pure function of (seed, stage, index): repeated draws agree.
        EXPECT_EQ(plan.fires(i, RouteStage::report), plan.fires(i, RouteStage::report));
    }
    plan.enabled = false;
    EXPECT_FALSE(plan.fires(0, RouteStage::topology));
}

TEST(FaultPlan, MaybeThrowRaisesInjectedFault)
{
    const FaultPlan plan = FaultPlan::parse("topology=1.0");
    EXPECT_THROW(plan.maybe_throw(3, RouteStage::topology, "injected: boom"),
                 InjectedFault);
    EXPECT_NO_THROW(plan.maybe_throw(3, RouteStage::wiresize, "never"));
}

TEST(FaultPlan, FromEnvReadsTheGateVariable)
{
    ASSERT_EQ(setenv("CONG93_FAULT_INJECT", "seed=5,nan=0.5", 1), 0);
    const FaultPlan plan = FaultPlan::from_env();
    EXPECT_TRUE(plan.enabled);
    EXPECT_EQ(plan.seed, 5u);
    EXPECT_DOUBLE_EQ(plan.nan_tech_rate, 0.5);
    ASSERT_EQ(unsetenv("CONG93_FAULT_INJECT"), 0);
    EXPECT_FALSE(FaultPlan::from_env().enabled);
}

// ---------------------------------------------------------------------------
// The degradation ladder, one injected stage at a time.  Rate-1.0 plans make
// every net take the same rung, so the assertions are exact.

PipelineOptions fault_opts(const std::string& spec, int threads = 1)
{
    PipelineOptions opts;
    opts.threads = threads;
    opts.faults = FaultPlan::parse(spec);
    return opts;
}

TEST(FaultLadder, TopologyFaultFallsBackToBrbc)
{
    const Technology tech = mcm_technology();
    PipelineStats stats;
    const auto results = route_batch(1, 5, 1000, 5, tech,
                                     fault_opts("seed=2,topology=1.0"), &stats);
    ASSERT_EQ(results.size(), 5u);
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::fallback_brbc);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::topology);
        EXPECT_EQ(r.diag.events[0].message, "injected: A-tree construction fault");
        // The fallback tree still goes through the full flow.
        EXPECT_GT(r.wiresized_delay_s, 0.0);
        EXPECT_FALSE(r.assignment.empty());
    }
    EXPECT_EQ(stats.nets_fallback, 5u);
    EXPECT_EQ(stats.nets_ok, 0u);
    EXPECT_EQ(stats.fault_events, 5u);
}

TEST(FaultLadder, TopologyAndFallbackFaultsFallBackToSpt)
{
    const auto results = route_batch(
        1, 4, 1000, 5, mcm_technology(),
        fault_opts("seed=2,topology=1.0,fallback=1.0"));
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::fallback_spt);
        ASSERT_EQ(r.diag.events.size(), 2u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::topology);
        EXPECT_EQ(r.diag.events[1].stage, RouteStage::fallback);
        EXPECT_GT(r.wiresized_delay_s, 0.0);
    }
}

TEST(FaultLadder, WiresizeFaultDemotesToUniformWidth)
{
    const auto results = route_batch(1, 4, 1000, 5, mcm_technology(),
                                     fault_opts("seed=2,wiresize=1.0"));
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::uniform_width);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::wiresize);
        // The uniform-width report survives; the wiresized numbers do not.
        EXPECT_GT(r.elmore_max_s, 0.0);
        EXPECT_EQ(r.wiresized_delay_s, 0.0);
        EXPECT_EQ(r.moment_elmore_max_s, 0.0);
        EXPECT_TRUE(r.assignment.empty());
    }
}

TEST(FaultLadder, MomentFaultDemotesToUniformWidthAndClearsWiresizing)
{
    const auto results = route_batch(1, 4, 1000, 5, mcm_technology(),
                                     fault_opts("seed=2,moment=1.0"));
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::uniform_width);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::moment_check);
        // An unverified wiresized result is not reported.
        EXPECT_EQ(r.wiresized_delay_s, 0.0);
        EXPECT_TRUE(r.assignment.empty());
    }
}

TEST(FaultLadder, MomentFaultIsMootWhenCheckDisabled)
{
    PipelineOptions opts = fault_opts("seed=2,moment=1.0");
    opts.moment_check = false;
    const auto results = route_batch(1, 3, 1000, 5, mcm_technology(), opts);
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::ok);
        EXPECT_TRUE(r.diag.empty());
        EXPECT_GT(r.wiresized_delay_s, 0.0);
    }
}

TEST(FaultLadder, NanTechnologyIsCaughtByTheReportGuard)
{
    PipelineStats stats;
    const auto results = route_batch(1, 4, 1000, 5, mcm_technology(),
                                     fault_opts("seed=2,nan=1.0"), &stats);
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::failed);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::report);
        EXPECT_NE(r.diag.events[0].message.find("non-finite"), std::string::npos);
        // A failed net reports nothing: no NaN may leak into the output.
        EXPECT_EQ(r.nodes, 0u);
        EXPECT_EQ(r.rph_s, 0.0);
        EXPECT_EQ(r.elmore_max_s, 0.0);
    }
    EXPECT_EQ(stats.nets_failed, 4u);
}

TEST(FaultLadder, InjectedArenaCapFailsAtCompile)
{
    PipelineStats stats;
    const auto results = route_batch(1, 4, 1000, 5, mcm_technology(),
                                     fault_opts("seed=2,arena-cap=3@1.0"), &stats);
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::failed);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::compile);
        EXPECT_NE(r.diag.events[0].message.find("arena cap"), std::string::npos);
    }
    EXPECT_EQ(stats.nets_failed, 4u);
    EXPECT_EQ(stats.counters.arena_rejects, 4u);
}

TEST(FaultLadder, RealNodeCapGuardsTheArena)
{
    PipelineOptions opts;
    opts.threads = 1;
    opts.max_nodes_per_net = 2;  // every 5-sink topology exceeds this
    PipelineStats stats;
    const auto results =
        route_batch(1, 3, 1000, 5, mcm_technology(), opts, &stats);
    for (const NetRouteResult& r : results) {
        EXPECT_EQ(r.status, RouteStatus::failed);
        ASSERT_EQ(r.diag.events.size(), 1u);
        EXPECT_EQ(r.diag.events[0].stage, RouteStage::compile);
    }
    EXPECT_EQ(stats.counters.arena_rejects, 3u);
}

TEST(FaultLadder, EnvironmentGateInjectsWhenOptionsAreSilent)
{
    ASSERT_EQ(setenv("CONG93_FAULT_INJECT", "seed=2,topology=1.0", 1), 0);
    PipelineOptions opts;
    opts.threads = 1;
    auto results = route_batch(1, 3, 1000, 5, mcm_technology(), opts);
    for (const NetRouteResult& r : results)
        EXPECT_EQ(r.status, RouteStatus::fallback_brbc);
    ASSERT_EQ(unsetenv("CONG93_FAULT_INJECT"), 0);
    results = route_batch(1, 3, 1000, 5, mcm_technology(), opts);
    for (const NetRouteResult& r : results)
        EXPECT_EQ(r.status, RouteStatus::ok);
}

// ---------------------------------------------------------------------------
// Input validation is part of the same isolation story: a malformed net
// degrades to invalid_input without disturbing its neighbours.

TEST(FaultIsolation, InvalidInputsAreIsolatedWithinABatch)
{
    Net good;
    good.source = Point{0, 0};
    good.sinks = {Point{50, 0}, Point{0, 70}};

    Net zero_length;  // every sink coincides with the source: rejected
    zero_length.source = Point{5, 5};
    zero_length.sinks = {Point{5, 5}};

    Net dup;  // duplicate sink: canonicalized with a note, still routed
    dup.source = Point{0, 0};
    dup.sinks = {Point{30, 40}, Point{30, 40}};

    PipelineOptions opts;
    opts.threads = 1;
    PipelineStats stats;
    const auto results = route_batch({good, zero_length, dup},
                                     mcm_technology(), opts, &stats);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].status, RouteStatus::ok);
    EXPECT_TRUE(results[0].diag.empty());

    EXPECT_EQ(results[1].status, RouteStatus::invalid_input);
    ASSERT_FALSE(results[1].diag.empty());
    EXPECT_EQ(results[1].diag.events.back().stage, RouteStage::validate);
    EXPECT_NE(results[1].diag.events.back().message.find("zero-length"),
              std::string::npos);
    EXPECT_EQ(results[1].nodes, 0u);

    EXPECT_EQ(results[2].status, RouteStatus::ok);  // canonicalized, not failed
    ASSERT_EQ(results[2].diag.events.size(), 1u);
    EXPECT_EQ(results[2].diag.events[0].stage, RouteStage::validate);
    EXPECT_NE(results[2].diag.events[0].message.find("duplicate"),
              std::string::npos);

    EXPECT_EQ(stats.nets_ok, 2u);
    EXPECT_EQ(stats.nets_invalid, 1u);
    EXPECT_EQ(stats.nets_not_ok(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism under fault load: the acceptance criteria of the isolation
// layer.

const char* kSoakSpec =
    "seed=7,topology=0.3,fallback=0.4,wiresize=0.3,moment=0.2,nan=0.15,"
    "arena-cap=12@0.2";

TEST(FaultIsolation, BatchWithFaultsAtEveryStageCompletes)
{
    PipelineStats stats;
    const auto results = route_batch(3, 32, 2000, 6, mcm_technology(),
                                     fault_opts(kSoakSpec), &stats);
    ASSERT_EQ(results.size(), 32u);
    EXPECT_EQ(stats.nets_ok + stats.nets_fallback + stats.nets_uniform_width +
                  stats.nets_invalid + stats.nets_failed,
              32u);
    // The soak rates are high enough that every rung must be exercised.
    EXPECT_GT(stats.nets_fallback, 0u);
    EXPECT_GT(stats.nets_uniform_width, 0u);
    EXPECT_GT(stats.nets_failed, 0u);
    EXPECT_GT(stats.nets_ok, 0u);
    std::size_t events = 0;
    for (const NetRouteResult& r : results) events += r.diag.events.size();
    EXPECT_EQ(stats.fault_events, events);
}

TEST(FaultIsolation, GoodNetsAreBitIdenticalToAFaultFreeRun)
{
    PipelineOptions clean;
    clean.threads = 1;
    const auto baseline = route_batch(3, 16, 2000, 6, mcm_technology(), clean);
    const auto faulted =
        route_batch(3, 16, 2000, 6, mcm_technology(), fault_opts(kSoakSpec));
    ASSERT_EQ(baseline.size(), faulted.size());
    std::size_t untouched = 0;
    for (std::size_t i = 0; i < faulted.size(); ++i) {
        if (faulted[i].status != RouteStatus::ok || !faulted[i].diag.empty())
            continue;
        ++untouched;
        // Single-element serialization compares every reported field at full
        // precision.
        EXPECT_EQ(format_results({faulted[i]}), format_results({baseline[i]}))
            << "net " << i;
    }
    EXPECT_GT(untouched, 0u);  // the comparison must not be vacuous
}

TEST(FaultIsolation, SerialAndParallelRunsAreByteIdenticalUnderFaults)
{
    PipelineStats s1, s4;
    const auto serial = route_batch(3, 24, 2000, 6, mcm_technology(),
                                    fault_opts(kSoakSpec, 1), &s1);
    const auto parallel = route_batch(3, 24, 2000, 6, mcm_technology(),
                                      fault_opts(kSoakSpec, 4), &s4);
    EXPECT_EQ(s1.threads, 1);
    EXPECT_EQ(s4.threads, 4);
    EXPECT_EQ(format_results(serial), format_results(parallel));
    EXPECT_EQ(s1.nets_ok, s4.nets_ok);
    EXPECT_EQ(s1.nets_fallback, s4.nets_fallback);
    EXPECT_EQ(s1.nets_uniform_width, s4.nets_uniform_width);
    EXPECT_EQ(s1.nets_invalid, s4.nets_invalid);
    EXPECT_EQ(s1.nets_failed, s4.nets_failed);
    EXPECT_EQ(s1.fault_events, s4.fault_events);
}

// ---------------------------------------------------------------------------
// Thread-pool exception aggregation: every worker failure is preserved.

TEST(ThreadPoolAggregation, AllSubmittedFailuresReachTheSubmitter)
{
    ThreadPool pool(2);
    for (const char* msg : {"boom B", "boom A", "boom C"})
        pool.submit([msg] { throw std::runtime_error(msg); });
    try {
        pool.wait_idle();
        FAIL() << "wait_idle() must throw";
    } catch (const BatchError& e) {
        EXPECT_EQ(e.causes().size(), 3u);
        // Messages are sorted so the aggregate text is deterministic.
        EXPECT_STREQ(e.what(), "3 worker exceptions:\n  boom A\n  boom B\n  boom C");
    }
    pool.submit([] {});  // the pool stays usable after an aggregate failure
    EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolAggregation, SingleFailureStillRethrowsTheOriginalType)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::invalid_argument("just one"); });
    EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
}

TEST(ThreadPoolAggregation, MultiSlotFailuresInParallelForSlotsAggregate)
{
    // Four slots, four indices, chunk 1: each slot pulls exactly one index
    // and parks at a barrier until all four arrived, so all four throw and
    // the aggregation path (not the single-rethrow path) is exercised
    // deterministically.
    ThreadPool pool(4);
    std::atomic<int> arrivals{0};
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    try {
        parallel_for_slots(
            pool, 4,
            [&](std::size_t i, int) {
                arrivals.fetch_add(1);
                while (arrivals.load() < 4 &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::yield();
                throw std::runtime_error("chunk fault " + std::to_string(i));
            },
            1);
        FAIL() << "parallel_for_slots must rethrow";
    } catch (const BatchError& e) {
        EXPECT_EQ(e.causes().size(), 4u);
        const std::string what = e.what();
        EXPECT_NE(what.find("4 worker exceptions"), std::string::npos);
        for (int i = 0; i < 4; ++i)
            EXPECT_NE(what.find("chunk fault " + std::to_string(i)),
                      std::string::npos);
    }
}

TEST(ThreadPoolAggregation, FailuresDuringCancellationStillAggregate)
{
    // Cancellation and worker failure race during real overload shutdowns;
    // the contract is that cancellation never swallows exceptions.  Four
    // slots each pull one index and park at a barrier; once all arrived the
    // request is cancelled and every slot throws anyway -- all four causes
    // must still reach the caller as one BatchError.
    ThreadPool pool(4);
    CancelToken cancel;
    std::atomic<int> arrivals{0};
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    try {
        parallel_for_slots(
            pool, 4,
            [&](std::size_t i, int) {
                arrivals.fetch_add(1);
                while (arrivals.load() < 4 &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::yield();
                cancel.cancel();
                throw std::runtime_error("dying worker " + std::to_string(i));
            },
            1, &cancel);
        FAIL() << "parallel_for_slots must rethrow";
    } catch (const BatchError& e) {
        EXPECT_EQ(e.causes().size(), 4u);
        const std::string what = e.what();
        for (int i = 0; i < 4; ++i)
            EXPECT_NE(what.find("dying worker " + std::to_string(i)),
                      std::string::npos);
    }

    // The pool is fully serviceable after the cancelled, failed run.
    std::atomic<int> ran{0};
    parallel_for_slots(pool, 8, [&](std::size_t, int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

}  // namespace
