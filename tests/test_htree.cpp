#include <gtest/gtest.h>

#include <algorithm>

#include "netgen/htree.h"
#include "rtree/metrics.h"
#include "rtree/segments.h"
#include "rtree/validate.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"

namespace cong93 {
namespace {

TEST(Htree, StructureAndCounts)
{
    for (const int levels : {1, 2, 3}) {
        const RoutingTree t = build_htree(levels, 1 << (levels + 3));
        EXPECT_TRUE(validate_structure(t).empty());
        EXPECT_EQ(t.sinks().size(), static_cast<std::size_t>(1) << (2 * levels));
    }
}

TEST(Htree, RejectsBadParameters)
{
    EXPECT_THROW(build_htree(0, 16), std::invalid_argument);
    EXPECT_THROW(build_htree(2, 0), std::invalid_argument);
    EXPECT_THROW(build_htree(3, 12), std::invalid_argument);  // not divisible by 8
}

TEST(Htree, PerfectlyBalancedPathLengths)
{
    const RoutingTree t = build_htree(3, 64, Point{100, 100});
    const Length pl0 = t.path_length(t.sinks().front());
    for (const NodeId s : t.sinks()) EXPECT_EQ(t.path_length(s), pl0);
    // Closed form: sum over levels of 2 * span_l with span halving.
    // levels=3, s=64: 2*(64 + 32 + 16) = 224.
    EXPECT_EQ(pl0, 224);
    EXPECT_EQ(radius(t), 224);
}

TEST(Htree, ZeroSkewUniformAndWiresized)
{
    const Technology tech = mcm_technology();
    const RoutingTree t = build_htree(2, 512, Point{1000, 1000});
    const DelayReport uniform = measure_delay(t, tech);
    const auto skew = [](const DelayReport& d) {
        const auto [lo, hi] =
            std::minmax_element(d.sink_delays.begin(), d.sink_delays.end());
        return *hi - *lo;
    };
    EXPECT_LT(skew(uniform), 1e-6 * uniform.mean);

    const SegmentDecomposition segs(t);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(3));
    const CombinedResult sized = grewsa_owsa(ctx);
    const DelayReport wide =
        measure_delay_wiresized(segs, tech, ctx.widths(), sized.assignment);
    EXPECT_LT(skew(wide), 1e-6 * wide.mean);
    EXPECT_LT(wide.mean, uniform.mean);

    // Symmetric segments get identical widths: group by depth from root.
    std::vector<int> depth(segs.count(), 0);
    for (std::size_t i = 0; i < segs.count(); ++i)
        if (segs[i].parent != kNoSegment)
            depth[i] = depth[static_cast<std::size_t>(segs[i].parent)] + 1;
    for (std::size_t i = 0; i < segs.count(); ++i) {
        for (std::size_t j = i + 1; j < segs.count(); ++j) {
            if (depth[i] == depth[j] && segs[i].length == segs[j].length) {
                EXPECT_EQ(sized.assignment[i], sized.assignment[j])
                    << "asymmetric widths at depth " << depth[i];
            }
        }
    }
}

TEST(Htree, MonotoneWavefrontFromDriver)
{
    // Along any root-to-leaf chain the optimal widths never increase.
    const Technology tech = mcm_technology();
    const RoutingTree t = build_htree(3, 1024, Point{2000, 2000});
    const SegmentDecomposition segs(t);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    const GrewsaResult g = grewsa_from_min(ctx);
    EXPECT_TRUE(is_monotone(segs, g.assignment));
    // The stem is at least as wide as any leaf segment.
    int leaf_max = 0;
    for (std::size_t i = 0; i < segs.count(); ++i)
        if (segs[i].children.empty())
            leaf_max = std::max(leaf_max, g.assignment[i]);
    for (const int root : segs.roots())
        EXPECT_GE(g.assignment[static_cast<std::size_t>(root)], leaf_max);
}

}  // namespace
}  // namespace cong93
