// End-to-end pipeline tests: net -> topology (all routers) -> wiresizing ->
// simulation, across technologies, mirroring the paper's experimental flows.
#include <gtest/gtest.h>

#include <string>

#include "atree/generalized.h"
#include "baseline/brbc.h"
#include "baseline/mst.h"
#include "baseline/one_steiner.h"
#include "baseline/spt.h"
#include "delay/elmore.h"
#include "delay/rph.h"
#include "netgen/netgen.h"
#include "rtree/metrics.h"
#include "rtree/validate.h"
#include "sim/delay_measure.h"
#include "wiresize/combined.h"

namespace cong93 {
namespace {

TEST(Pipeline, FullMcmFlow)
{
    const Technology tech = mcm_technology();
    const auto nets = random_nets(2024, 5, kMcmGrid, 8);
    for (const Net& net : nets) {
        // Topology.
        const AtreeResult atree = build_atree_general(net);
        require_valid(atree.tree, net);
        // Wiresizing.
        const SegmentDecomposition segs(atree.tree);
        const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
        const CombinedResult sized = grewsa_owsa(ctx);
        EXPECT_LE(sized.delay, ctx.delay(min_assignment(segs.count())) * (1 + 1e-9));
        // Simulation: wiresized tree beats the uniform tree.
        const auto uniform = measure_delay(atree.tree, tech);
        const auto wiresized = measure_delay_wiresized(segs, tech, ctx.widths(),
                                                       sized.assignment);
        EXPECT_LT(wiresized.mean, uniform.mean * 1.001);
        EXPECT_GT(wiresized.mean, 0.0);
    }
}

TEST(Pipeline, AllRoutersProduceValidTrees)
{
    const auto nets = random_nets(31337, 5, kMcmGrid, 12);
    for (const Net& net : nets) {
        const std::vector<std::pair<std::string, RoutingTree>> trees = [
        ](const Net& n) {
            std::vector<std::pair<std::string, RoutingTree>> out;
            out.emplace_back("atree", build_atree_general(n).tree);
            out.emplace_back("mst", build_mst_tree(n));
            out.emplace_back("spt", build_spt(n));
            out.emplace_back("1steiner", build_one_steiner(n).tree);
            out.emplace_back("brbc05", build_brbc(n, 0.5));
            out.emplace_back("brbc10", build_brbc(n, 1.0));
            return out;
        }(net);
        for (const auto& [name, tree] : trees) {
            SCOPED_TRACE(name);
            require_valid(tree, net);
            EXPECT_GT(total_length(tree), 0);
            // Sinks reachable with sensible radius.
            EXPECT_GE(radius(tree), net_radius(net));
        }
    }
}

TEST(Pipeline, AtreeBeatsSteinerOnMcmDelay)
{
    // The paper's central claim (Table 5): under MCM technology the A-tree
    // has lower average simulated delay than the wirelength-optimized
    // 1-Steiner tree for medium/large nets.  Averaged over nets.
    const Technology tech = mcm_technology();
    const auto nets = random_nets(777, 12, kMcmGrid, 16);
    double atree_total = 0.0;
    double steiner_total = 0.0;
    for (const Net& net : nets) {
        atree_total += measure_delay(build_atree_general(net).tree, tech).mean;
        steiner_total += measure_delay(build_one_steiner(net).tree, tech).mean;
    }
    EXPECT_LT(atree_total, steiner_total);
}

TEST(Pipeline, SteinerWinsOnOldTechnology)
{
    // Section 5.4: with the 2.0um CMOS resistance ratio (minimum drivers),
    // wirelength dominates and the Steiner tree is at least competitive;
    // the A-tree advantage must GROW as the driver is scaled (ratio drops).
    const Technology old_min = cmos_2000nm();
    const Technology old_scaled = cmos_2000nm().with_driver_scale(10.0);
    const auto nets = random_nets(4242, 12, kIcGrid, 8);
    double adv_min = 0.0, adv_scaled = 0.0;
    for (const Net& net : nets) {
        const RoutingTree at = build_atree_general(net).tree;
        const RoutingTree st = build_one_steiner(net).tree;
        adv_min += measure_delay(st, old_min).mean - measure_delay(at, old_min).mean;
        adv_scaled +=
            measure_delay(st, old_scaled).mean - measure_delay(at, old_scaled).mean;
    }
    // Advantage (positive = A-tree faster) grows with driver scaling.
    EXPECT_GT(adv_scaled, adv_min);
}

TEST(Pipeline, RphObjectiveTracksSimulatedDelay)
{
    // The RPH bound is the optimization objective; it must correlate with
    // the simulated delay (same ordering on a topological A/B comparison
    // for most nets).
    const Technology tech = mcm_technology();
    const auto nets = random_nets(55555, 20, kMcmGrid, 8);
    int agree = 0;
    for (const Net& net : nets) {
        const RoutingTree a = build_atree_general(net).tree;
        const RoutingTree b = build_mst_tree(net);
        const bool rph_says_a = rph_delay(a, tech) < rph_delay(b, tech);
        const bool sim_says_a =
            measure_delay(a, tech).mean < measure_delay(b, tech).mean;
        agree += rph_says_a == sim_says_a;
    }
    EXPECT_GE(agree, 15) << "RPH bound should usually agree with simulation";
}

TEST(Pipeline, EveryTechnologyRunsEndToEnd)
{
    for (const Technology& base : table9_technologies()) {
        for (const double scale : {1.0, 4.0, 10.0}) {
            const Technology tech = base.with_driver_scale(scale);
            const auto nets = random_nets(17, 2, kIcGrid, 8);
            for (const Net& net : nets) {
                const AtreeResult r = build_atree_general(net);
                const SegmentDecomposition segs(r.tree);
                const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(3));
                const CombinedResult sized = grewsa_owsa(ctx);
                const auto d = measure_delay_wiresized(segs, tech, ctx.widths(),
                                                       sized.assignment);
                EXPECT_GT(d.mean, 0.0) << tech.name;
                EXPECT_LT(d.mean, 1e-3) << tech.name;  // sanity: sub-millisecond
            }
        }
    }
}

TEST(Pipeline, WiresizingGainMatchesPaperBallpark)
{
    // Table 6: optimal wiresizing reduces the RPH delay of 16-sink MCM
    // A-trees substantially (the paper reports ~30% at r=2 up to ~50% at
    // r=6).  Check the direction and a loose band.
    const Technology tech = mcm_technology();
    const auto nets = random_nets(606060, 8, kMcmGrid, 16);
    double base = 0.0, r2 = 0.0, r6 = 0.0;
    for (const Net& net : nets) {
        const AtreeResult r = build_atree_general(net);
        const SegmentDecomposition segs(r.tree);
        const WiresizeContext c2(segs, tech, WidthSet::uniform_steps(2));
        const WiresizeContext c6(segs, tech, WidthSet::uniform_steps(6));
        base += c2.delay(min_assignment(segs.count()));
        r2 += grewsa_owsa(c2).delay;
        r6 += grewsa_owsa(c6).delay;
    }
    EXPECT_LT(r2, base);
    EXPECT_LT(r6, r2);              // more widths, more gain
    EXPECT_LT(r6, 0.75 * base);     // strong gain in the MCM regime
}

}  // namespace
}  // namespace cong93
