// Property-based tests of the paper's wiresizing theorems over random nets,
// technologies and width counts (parameterized sweeps).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <string>

#include "atree/generalized.h"
#include "netgen/netgen.h"
#include "wiresize/combined.h"
#include "wiresize/counting.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"

namespace cong93 {
namespace {

struct Case {
    std::uint64_t seed;
    int sinks;
    int r;
    const char* tech_name;
};

Technology tech_by_name(const std::string& name)
{
    if (name == "mcm") return mcm_technology();
    if (name == "cmos05") return cmos_500nm().with_driver_scale(8.0);
    return cmos_1200nm().with_driver_scale(6.0);
}

class WiresizeProperty : public ::testing::TestWithParam<Case> {
protected:
    void SetUp() override
    {
        const Case c = GetParam();
        tech_ = tech_by_name(c.tech_name);
        const Coord grid = std::string(c.tech_name) == "mcm" ? kMcmGrid : kIcGrid;
        std::mt19937_64 rng(c.seed);
        net_ = random_net(rng, grid, c.sinks);
        tree_ = build_atree_general(net_).tree;
        segs_ = std::make_unique<SegmentDecomposition>(tree_);
        ctx_ = std::make_unique<WiresizeContext>(*segs_, tech_,
                                                 WidthSet::uniform_steps(c.r));
    }

    Technology tech_;
    Net net_;
    RoutingTree tree_{Point{0, 0}};
    std::unique_ptr<SegmentDecomposition> segs_;
    std::unique_ptr<WiresizeContext> ctx_;
};

TEST_P(WiresizeProperty, OptimalAssignmentIsMonotone)
{
    // Theorem 4.
    const OwsaResult o = owsa(*ctx_);
    EXPECT_TRUE(is_monotone(*segs_, o.assignment));
}

TEST_P(WiresizeProperty, GrewsaFixpointsBracketOptimum)
{
    // Theorem 7 (dominance property).
    const OwsaResult o = owsa(*ctx_);
    const GrewsaResult lo = grewsa_from_min(*ctx_);
    const GrewsaResult hi = grewsa_from_max(*ctx_);
    EXPECT_TRUE(dominates(o.assignment, lo.assignment));
    EXPECT_TRUE(dominates(hi.assignment, o.assignment));
    // Both fixpoints are realizable, so they upper-bound the optimal delay.
    EXPECT_GE(lo.delay, o.delay * (1.0 - 1e-9));
    EXPECT_GE(hi.delay, o.delay * (1.0 - 1e-9));
}

TEST_P(WiresizeProperty, CombinedMatchesOwsa)
{
    const OwsaResult o = owsa(*ctx_);
    const CombinedResult c = grewsa_owsa(*ctx_);
    EXPECT_NEAR(c.delay, o.delay, 1e-9 * o.delay);
    EXPECT_LE(c.assignments_examined, o.assignments_examined);
    EXPECT_GE(c.avg_choices_per_segment(), 1.0);
    EXPECT_LE(c.avg_choices_per_segment(), static_cast<double>(ctx_->width_count()));
}

TEST_P(WiresizeProperty, WiresizingNeverHurts)
{
    const OwsaResult o = owsa(*ctx_);
    EXPECT_LE(o.delay, ctx_->delay(min_assignment(segs_->count())) * (1.0 + 1e-9));
}

TEST_P(WiresizeProperty, DelayLowerBoundIsValid)
{
    const CombinedResult c = grewsa_owsa(*ctx_);
    const double lb = delay_lower_bound(*ctx_, c.lower_bounds, c.upper_bounds);
    EXPECT_LE(lb, c.delay * (1.0 + 1e-9));
    EXPECT_GT(lb, 0.0);
}

TEST_P(WiresizeProperty, LocalRefinementNeverIncreasesDelay)
{
    Assignment a = min_assignment(segs_->count());
    double cur = ctx_->delay(a);
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < segs_->count(); ++i) {
            const int w = ctx_->locally_optimal_width(a, i, ctx_->width_count() - 1);
            a[i] = w;
            const double next = ctx_->delay(a);
            EXPECT_LE(next, cur * (1.0 + 1e-9));
            cur = next;
        }
    }
}

TEST_P(WiresizeProperty, MonotoneCountBetweenOwsaAndExhaustive)
{
    const double exh = exhaustive_assignment_count(segs_->count(), ctx_->width_count());
    const double mono = monotone_assignment_count(*segs_, ctx_->width_count());
    EXPECT_LE(mono, exh);
    EXPECT_GE(mono, 1.0);
    const OwsaResult o = owsa(*ctx_);
    // OWSA's bound of Theorem 5.
    EXPECT_LE(static_cast<double>(o.calls),
              std::pow(static_cast<double>(segs_->count()),
                       static_cast<double>(ctx_->width_count() - 1)) +
                  static_cast<double>(segs_->count()) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WiresizeProperty,
    ::testing::Values(Case{1, 4, 2, "mcm"}, Case{2, 4, 4, "mcm"},
                      Case{3, 8, 2, "mcm"}, Case{4, 8, 3, "mcm"},
                      Case{5, 8, 5, "mcm"}, Case{6, 16, 2, "mcm"},
                      Case{7, 16, 3, "mcm"}, Case{8, 16, 4, "mcm"},
                      Case{9, 5, 3, "cmos05"}, Case{10, 8, 4, "cmos05"},
                      Case{11, 8, 3, "cmos12"}, Case{12, 12, 2, "cmos12"},
                      Case{13, 6, 6, "mcm"}, Case{14, 10, 6, "cmos05"}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.tech_name) + "_s" +
               std::to_string(info.param.sinks) + "_r" + std::to_string(info.param.r) +
               "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace cong93
