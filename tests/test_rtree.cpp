#include <gtest/gtest.h>

#include "rtree/io.h"
#include "rtree/metrics.h"
#include "rtree/routing_tree.h"
#include "rtree/segments.h"
#include "rtree/validate.h"

namespace cong93 {
namespace {

/// The T-tree of Figure 4: source at the bottom of the stem, two branches.
///      x         x
///      +----+----+
///           |
///           S
RoutingTree make_t_tree()
{
    RoutingTree t(Point{5, 0});
    const NodeId mid = t.add_child(t.root(), Point{5, 4});
    const NodeId left = t.add_child(mid, Point{0, 4});
    const NodeId right = t.add_child(mid, Point{10, 4});
    t.mark_sink(left);
    t.mark_sink(right);
    return t;
}

TEST(RoutingTree, BasicConstruction)
{
    const RoutingTree t = make_t_tree();
    EXPECT_EQ(t.node_count(), 4u);
    EXPECT_EQ(t.sinks().size(), 2u);
    EXPECT_EQ(t.point(t.root()), (Point{5, 0}));
    EXPECT_EQ(t.path_length(1), 4);
    EXPECT_EQ(t.path_length(2), 9);
    EXPECT_EQ(t.path_length(3), 9);
    EXPECT_TRUE(validate_structure(t).empty());
}

TEST(RoutingTree, RejectsBadEdges)
{
    RoutingTree t(Point{0, 0});
    EXPECT_THROW(t.add_child(t.root(), Point{1, 1}), std::invalid_argument);
    EXPECT_THROW(t.add_child(t.root(), Point{0, 0}), std::invalid_argument);
}

TEST(RoutingTree, AttachPathSkipsZeroLegs)
{
    RoutingTree t(Point{0, 0});
    const NodeId end = t.attach_path(t.root(), {{0, 0}, {0, 3}, {0, 3}, {4, 3}});
    EXPECT_EQ(t.point(end), (Point{4, 3}));
    EXPECT_EQ(t.node_count(), 3u);
    EXPECT_EQ(t.path_length(end), 7);
}

TEST(RoutingTree, FindOrSplit)
{
    RoutingTree t = make_t_tree();
    // Existing node: no split.
    const auto existing = t.find_or_split(Point{5, 4});
    ASSERT_TRUE(existing.has_value());
    EXPECT_EQ(t.node_count(), 4u);
    // Mid-edge point: splits the stem.
    const auto mid = t.find_or_split(Point{5, 2});
    ASSERT_TRUE(mid.has_value());
    EXPECT_EQ(t.node_count(), 5u);
    EXPECT_EQ(t.path_length(*mid), 2);
    EXPECT_TRUE(validate_structure(t).empty());
    // The split preserved downstream path lengths.
    EXPECT_EQ(t.path_length(1), 4);
    // Point off the tree.
    EXPECT_FALSE(t.find_or_split(Point{1, 1}).has_value());
}

TEST(RoutingTree, Preorder)
{
    const RoutingTree t = make_t_tree();
    const auto order = t.preorder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], t.root());
    // Parent always precedes child.
    std::vector<bool> seen(t.node_count(), false);
    for (const NodeId id : order) {
        if (id != t.root()) {
            EXPECT_TRUE(seen[static_cast<std::size_t>(t.node(id).parent)]);
        }
        seen[static_cast<std::size_t>(id)] = true;
    }
}

TEST(Metrics, TTree)
{
    const RoutingTree t = make_t_tree();
    EXPECT_EQ(total_length(t), 14);
    EXPECT_EQ(sum_sink_path_lengths(t), 18);
    // Stem: edge length 4 from pl 0 -> 1+2+3+4 = 10.
    // Each branch: length 5 from pl 4 -> 5+6+7+8+9 = 35.
    EXPECT_EQ(sum_all_node_path_lengths(t), 80);
    EXPECT_EQ(radius(t), 9);
}

TEST(Metrics, MdrtCost)
{
    const RoutingTree t = make_t_tree();
    EXPECT_DOUBLE_EQ(mdrt_cost(t, 1, 0, 0), 14.0);
    EXPECT_DOUBLE_EQ(mdrt_cost(t, 0, 1, 0), 18.0);
    EXPECT_DOUBLE_EQ(mdrt_cost(t, 0, 0, 1), 80.0);
    EXPECT_DOUBLE_EQ(mdrt_cost(t, 1, 2, 0.5), 14 + 36 + 40);
}

TEST(Metrics, NetRadius)
{
    const Net net{{0, 0}, {{3, 4}, {-2, 1}}};
    EXPECT_EQ(net_radius(net), 7);
}

TEST(Validate, SpansNet)
{
    const RoutingTree t = make_t_tree();
    const Net good{{5, 0}, {{0, 4}, {10, 4}}};
    const Net bad_source{{0, 0}, {{0, 4}}};
    const Net missing_sink{{5, 0}, {{0, 4}, {7, 7}}};
    EXPECT_TRUE(spans_net(t, good));
    EXPECT_FALSE(spans_net(t, bad_source));
    EXPECT_FALSE(spans_net(t, missing_sink));
    EXPECT_NO_THROW(require_valid(t, good));
    EXPECT_THROW(require_valid(t, missing_sink), std::logic_error);
}

TEST(Validate, IsAtree)
{
    // The T-tree is NOT an A-tree: the left sink is at L1 distance 9 from
    // the source... actually dist((5,0),(0,4)) = 9 == pl -> check carefully.
    const RoutingTree t = make_t_tree();
    EXPECT_TRUE(is_atree(t));  // both sink paths happen to be monotone

    // A genuinely non-shortest detour.
    RoutingTree d(Point{0, 0});
    const NodeId a = d.add_child(d.root(), Point{5, 0});
    const NodeId b = d.add_child(a, Point{5, 3});
    const NodeId c = d.add_child(b, Point{2, 3});  // doubles back west
    d.mark_sink(c);
    EXPECT_FALSE(is_atree(d));
}

TEST(Segments, TTreeDecomposition)
{
    const RoutingTree t = make_t_tree();
    const SegmentDecomposition segs(t);
    ASSERT_EQ(segs.count(), 3u);
    EXPECT_EQ(segs.roots().size(), 1u);
    const WireSegment& stem = segs[static_cast<std::size_t>(segs.roots()[0])];
    EXPECT_EQ(stem.length, 4);
    EXPECT_EQ(stem.parent, kNoSegment);
    EXPECT_EQ(stem.children.size(), 2u);
    EXPECT_FALSE(stem.tail_is_sink);
    for (const int c : stem.children) {
        EXPECT_EQ(segs[static_cast<std::size_t>(c)].length, 5);
        EXPECT_TRUE(segs[static_cast<std::size_t>(c)].tail_is_sink);
    }
    EXPECT_EQ(segs.total_length(), total_length(t));
}

TEST(Segments, TurnsSplitSegments)
{
    // One sink reached via a turn: two segments.
    RoutingTree t(Point{0, 0});
    const NodeId corner = t.add_child(t.root(), Point{3, 0});
    const NodeId end = t.add_child(corner, Point{3, 4});
    t.mark_sink(end);
    const SegmentDecomposition segs(t);
    ASSERT_EQ(segs.count(), 2u);
    EXPECT_EQ(segs[0].length, 3);
    EXPECT_EQ(segs[1].length, 4);
    EXPECT_EQ(segs[1].parent, 0);
}

TEST(Segments, CollinearTrivialNodesMerge)
{
    // A chain with a trivial collinear midpoint is one segment.
    RoutingTree t(Point{0, 0});
    const NodeId mid = t.add_child(t.root(), Point{0, 3});
    const NodeId end = t.add_child(mid, Point{0, 8});
    t.mark_sink(end);
    const SegmentDecomposition segs(t);
    ASSERT_EQ(segs.count(), 1u);
    EXPECT_EQ(segs[0].length, 8);
    EXPECT_TRUE(segs[0].tail_is_sink);
}

TEST(Segments, SinkSplitsCollinearRun)
{
    // A sink in the middle of a straight run is non-trivial.
    RoutingTree t(Point{0, 0});
    const NodeId mid = t.add_child(t.root(), Point{0, 3});
    const NodeId end = t.add_child(mid, Point{0, 8});
    t.mark_sink(mid);
    t.mark_sink(end);
    const SegmentDecomposition segs(t);
    ASSERT_EQ(segs.count(), 2u);
    EXPECT_TRUE(segs[0].tail_is_sink);
    EXPECT_TRUE(segs[1].tail_is_sink);
}

TEST(Segments, DownstreamSinkCap)
{
    const RoutingTree t = make_t_tree();
    const SegmentDecomposition segs(t);
    const auto caps = segs.downstream_sink_cap(2.0);
    // Stem sees both sinks; each branch sees one.
    EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(segs.roots()[0])], 4.0);
}

TEST(TreeFromParentMap, LEmbedding)
{
    const Net net{{0, 0}, {{4, 3}}};
    const std::vector<Point> pts{{0, 0}, {4, 3}};
    const std::vector<int> parent{-1, 0};
    const RoutingTree t = tree_from_parent_map(net, pts, parent);
    EXPECT_TRUE(validate_structure(t).empty());
    EXPECT_TRUE(spans_net(t, net));
    EXPECT_EQ(total_length(t), 7);
    EXPECT_EQ(t.node_count(), 3u);  // source, corner, sink
}

TEST(TreeFromParentMap, Errors)
{
    const Net net{{0, 0}, {{4, 3}}};
    EXPECT_THROW(tree_from_parent_map(net, {{0, 0}}, {-1, 0}), std::invalid_argument);
    EXPECT_THROW(tree_from_parent_map(net, {{0, 0}, {4, 3}}, {-1, -1}),
                 std::invalid_argument);
    // Sink not covered.
    EXPECT_THROW(tree_from_parent_map(net, {{0, 0}, {1, 1}}, {-1, 0}),
                 std::invalid_argument);
}

TEST(Io, AsciiAndDot)
{
    const RoutingTree t = make_t_tree();
    const std::string art = to_ascii(t);
    EXPECT_NE(art.find('S'), std::string::npos);
    EXPECT_NE(art.find('x'), std::string::npos);
    const std::string dot = to_dot(t);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(describe(t).find("length=14"), std::string::npos);
}

}  // namespace
}  // namespace cong93
