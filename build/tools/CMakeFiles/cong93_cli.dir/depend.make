# Empty dependencies file for cong93_cli.
# This may be replaced when dependencies are built.
