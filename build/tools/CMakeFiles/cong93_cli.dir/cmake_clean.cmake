file(REMOVE_RECURSE
  "CMakeFiles/cong93_cli.dir/cong93_main.cpp.o"
  "CMakeFiles/cong93_cli.dir/cong93_main.cpp.o.d"
  "cong93"
  "cong93.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong93_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
