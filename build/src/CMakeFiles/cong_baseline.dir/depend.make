# Empty dependencies file for cong_baseline.
# This may be replaced when dependencies are built.
