
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/brbc.cpp" "src/CMakeFiles/cong_baseline.dir/baseline/brbc.cpp.o" "gcc" "src/CMakeFiles/cong_baseline.dir/baseline/brbc.cpp.o.d"
  "/root/repo/src/baseline/exact_steiner.cpp" "src/CMakeFiles/cong_baseline.dir/baseline/exact_steiner.cpp.o" "gcc" "src/CMakeFiles/cong_baseline.dir/baseline/exact_steiner.cpp.o.d"
  "/root/repo/src/baseline/mst.cpp" "src/CMakeFiles/cong_baseline.dir/baseline/mst.cpp.o" "gcc" "src/CMakeFiles/cong_baseline.dir/baseline/mst.cpp.o.d"
  "/root/repo/src/baseline/one_steiner.cpp" "src/CMakeFiles/cong_baseline.dir/baseline/one_steiner.cpp.o" "gcc" "src/CMakeFiles/cong_baseline.dir/baseline/one_steiner.cpp.o.d"
  "/root/repo/src/baseline/spt.cpp" "src/CMakeFiles/cong_baseline.dir/baseline/spt.cpp.o" "gcc" "src/CMakeFiles/cong_baseline.dir/baseline/spt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
