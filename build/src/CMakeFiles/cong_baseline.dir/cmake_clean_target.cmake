file(REMOVE_RECURSE
  "libcong_baseline.a"
)
