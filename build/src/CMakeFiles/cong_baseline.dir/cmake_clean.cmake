file(REMOVE_RECURSE
  "CMakeFiles/cong_baseline.dir/baseline/brbc.cpp.o"
  "CMakeFiles/cong_baseline.dir/baseline/brbc.cpp.o.d"
  "CMakeFiles/cong_baseline.dir/baseline/exact_steiner.cpp.o"
  "CMakeFiles/cong_baseline.dir/baseline/exact_steiner.cpp.o.d"
  "CMakeFiles/cong_baseline.dir/baseline/mst.cpp.o"
  "CMakeFiles/cong_baseline.dir/baseline/mst.cpp.o.d"
  "CMakeFiles/cong_baseline.dir/baseline/one_steiner.cpp.o"
  "CMakeFiles/cong_baseline.dir/baseline/one_steiner.cpp.o.d"
  "CMakeFiles/cong_baseline.dir/baseline/spt.cpp.o"
  "CMakeFiles/cong_baseline.dir/baseline/spt.cpp.o.d"
  "libcong_baseline.a"
  "libcong_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
