file(REMOVE_RECURSE
  "CMakeFiles/cong_sim.dir/sim/delay_measure.cpp.o"
  "CMakeFiles/cong_sim.dir/sim/delay_measure.cpp.o.d"
  "CMakeFiles/cong_sim.dir/sim/moments.cpp.o"
  "CMakeFiles/cong_sim.dir/sim/moments.cpp.o.d"
  "CMakeFiles/cong_sim.dir/sim/rc_tree.cpp.o"
  "CMakeFiles/cong_sim.dir/sim/rc_tree.cpp.o.d"
  "CMakeFiles/cong_sim.dir/sim/transient.cpp.o"
  "CMakeFiles/cong_sim.dir/sim/transient.cpp.o.d"
  "CMakeFiles/cong_sim.dir/sim/two_pole.cpp.o"
  "CMakeFiles/cong_sim.dir/sim/two_pole.cpp.o.d"
  "libcong_sim.a"
  "libcong_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
