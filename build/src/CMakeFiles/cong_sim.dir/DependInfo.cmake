
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_measure.cpp" "src/CMakeFiles/cong_sim.dir/sim/delay_measure.cpp.o" "gcc" "src/CMakeFiles/cong_sim.dir/sim/delay_measure.cpp.o.d"
  "/root/repo/src/sim/moments.cpp" "src/CMakeFiles/cong_sim.dir/sim/moments.cpp.o" "gcc" "src/CMakeFiles/cong_sim.dir/sim/moments.cpp.o.d"
  "/root/repo/src/sim/rc_tree.cpp" "src/CMakeFiles/cong_sim.dir/sim/rc_tree.cpp.o" "gcc" "src/CMakeFiles/cong_sim.dir/sim/rc_tree.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/CMakeFiles/cong_sim.dir/sim/transient.cpp.o" "gcc" "src/CMakeFiles/cong_sim.dir/sim/transient.cpp.o.d"
  "/root/repo/src/sim/two_pole.cpp" "src/CMakeFiles/cong_sim.dir/sim/two_pole.cpp.o" "gcc" "src/CMakeFiles/cong_sim.dir/sim/two_pole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_wiresize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
