# Empty compiler generated dependencies file for cong_sim.
# This may be replaced when dependencies are built.
