file(REMOVE_RECURSE
  "libcong_sim.a"
)
