file(REMOVE_RECURSE
  "CMakeFiles/cong_geom.dir/geom/hanan.cpp.o"
  "CMakeFiles/cong_geom.dir/geom/hanan.cpp.o.d"
  "CMakeFiles/cong_geom.dir/geom/point.cpp.o"
  "CMakeFiles/cong_geom.dir/geom/point.cpp.o.d"
  "CMakeFiles/cong_geom.dir/geom/segment.cpp.o"
  "CMakeFiles/cong_geom.dir/geom/segment.cpp.o.d"
  "libcong_geom.a"
  "libcong_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
