# Empty compiler generated dependencies file for cong_geom.
# This may be replaced when dependencies are built.
