file(REMOVE_RECURSE
  "libcong_geom.a"
)
