file(REMOVE_RECURSE
  "libcong_atree.a"
)
