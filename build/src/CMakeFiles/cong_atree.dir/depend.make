# Empty dependencies file for cong_atree.
# This may be replaced when dependencies are built.
