
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atree/atree.cpp" "src/CMakeFiles/cong_atree.dir/atree/atree.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/atree.cpp.o.d"
  "/root/repo/src/atree/critical.cpp" "src/CMakeFiles/cong_atree.dir/atree/critical.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/critical.cpp.o.d"
  "/root/repo/src/atree/exact_rsa.cpp" "src/CMakeFiles/cong_atree.dir/atree/exact_rsa.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/exact_rsa.cpp.o.d"
  "/root/repo/src/atree/forest.cpp" "src/CMakeFiles/cong_atree.dir/atree/forest.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/forest.cpp.o.d"
  "/root/repo/src/atree/generalized.cpp" "src/CMakeFiles/cong_atree.dir/atree/generalized.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/generalized.cpp.o.d"
  "/root/repo/src/atree/moves.cpp" "src/CMakeFiles/cong_atree.dir/atree/moves.cpp.o" "gcc" "src/CMakeFiles/cong_atree.dir/atree/moves.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
