file(REMOVE_RECURSE
  "CMakeFiles/cong_atree.dir/atree/atree.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/atree.cpp.o.d"
  "CMakeFiles/cong_atree.dir/atree/critical.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/critical.cpp.o.d"
  "CMakeFiles/cong_atree.dir/atree/exact_rsa.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/exact_rsa.cpp.o.d"
  "CMakeFiles/cong_atree.dir/atree/forest.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/forest.cpp.o.d"
  "CMakeFiles/cong_atree.dir/atree/generalized.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/generalized.cpp.o.d"
  "CMakeFiles/cong_atree.dir/atree/moves.cpp.o"
  "CMakeFiles/cong_atree.dir/atree/moves.cpp.o.d"
  "libcong_atree.a"
  "libcong_atree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_atree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
