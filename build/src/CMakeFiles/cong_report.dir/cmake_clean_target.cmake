file(REMOVE_RECURSE
  "libcong_report.a"
)
