file(REMOVE_RECURSE
  "CMakeFiles/cong_report.dir/report/table.cpp.o"
  "CMakeFiles/cong_report.dir/report/table.cpp.o.d"
  "libcong_report.a"
  "libcong_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
