# Empty dependencies file for cong_report.
# This may be replaced when dependencies are built.
