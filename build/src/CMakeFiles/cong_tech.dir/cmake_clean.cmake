file(REMOVE_RECURSE
  "CMakeFiles/cong_tech.dir/tech/technology.cpp.o"
  "CMakeFiles/cong_tech.dir/tech/technology.cpp.o.d"
  "libcong_tech.a"
  "libcong_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
