# Empty dependencies file for cong_tech.
# This may be replaced when dependencies are built.
