file(REMOVE_RECURSE
  "libcong_tech.a"
)
