file(REMOVE_RECURSE
  "libcong_netgen.a"
)
