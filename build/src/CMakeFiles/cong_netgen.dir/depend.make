# Empty dependencies file for cong_netgen.
# This may be replaced when dependencies are built.
