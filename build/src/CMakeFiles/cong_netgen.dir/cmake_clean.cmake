file(REMOVE_RECURSE
  "CMakeFiles/cong_netgen.dir/netgen/htree.cpp.o"
  "CMakeFiles/cong_netgen.dir/netgen/htree.cpp.o.d"
  "CMakeFiles/cong_netgen.dir/netgen/netgen.cpp.o"
  "CMakeFiles/cong_netgen.dir/netgen/netgen.cpp.o.d"
  "libcong_netgen.a"
  "libcong_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
