file(REMOVE_RECURSE
  "libcong_wiresize.a"
)
