file(REMOVE_RECURSE
  "CMakeFiles/cong_wiresize.dir/wiresize/assignment.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/assignment.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/bottom_up.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/bottom_up.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/combined.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/combined.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/counting.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/counting.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/delay_eval.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/delay_eval.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/grewsa.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/grewsa.cpp.o.d"
  "CMakeFiles/cong_wiresize.dir/wiresize/owsa.cpp.o"
  "CMakeFiles/cong_wiresize.dir/wiresize/owsa.cpp.o.d"
  "libcong_wiresize.a"
  "libcong_wiresize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_wiresize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
