# Empty compiler generated dependencies file for cong_wiresize.
# This may be replaced when dependencies are built.
