
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wiresize/assignment.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/assignment.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/assignment.cpp.o.d"
  "/root/repo/src/wiresize/bottom_up.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/bottom_up.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/bottom_up.cpp.o.d"
  "/root/repo/src/wiresize/combined.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/combined.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/combined.cpp.o.d"
  "/root/repo/src/wiresize/counting.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/counting.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/counting.cpp.o.d"
  "/root/repo/src/wiresize/delay_eval.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/delay_eval.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/delay_eval.cpp.o.d"
  "/root/repo/src/wiresize/grewsa.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/grewsa.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/grewsa.cpp.o.d"
  "/root/repo/src/wiresize/owsa.cpp" "src/CMakeFiles/cong_wiresize.dir/wiresize/owsa.cpp.o" "gcc" "src/CMakeFiles/cong_wiresize.dir/wiresize/owsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
