file(REMOVE_RECURSE
  "CMakeFiles/cong_cli.dir/cli/cli.cpp.o"
  "CMakeFiles/cong_cli.dir/cli/cli.cpp.o.d"
  "libcong_cli.a"
  "libcong_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
