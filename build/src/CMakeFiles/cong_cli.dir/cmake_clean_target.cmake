file(REMOVE_RECURSE
  "libcong_cli.a"
)
