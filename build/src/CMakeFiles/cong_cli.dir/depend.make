# Empty dependencies file for cong_cli.
# This may be replaced when dependencies are built.
