# Empty compiler generated dependencies file for cong_cli.
# This may be replaced when dependencies are built.
