
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/builder.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/builder.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/builder.cpp.o.d"
  "/root/repo/src/rtree/io.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/io.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/io.cpp.o.d"
  "/root/repo/src/rtree/metrics.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/metrics.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/metrics.cpp.o.d"
  "/root/repo/src/rtree/routing_tree.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/routing_tree.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/routing_tree.cpp.o.d"
  "/root/repo/src/rtree/segments.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/segments.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/segments.cpp.o.d"
  "/root/repo/src/rtree/svg.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/svg.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/svg.cpp.o.d"
  "/root/repo/src/rtree/transform.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/transform.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/transform.cpp.o.d"
  "/root/repo/src/rtree/validate.cpp" "src/CMakeFiles/cong_rtree.dir/rtree/validate.cpp.o" "gcc" "src/CMakeFiles/cong_rtree.dir/rtree/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
