file(REMOVE_RECURSE
  "CMakeFiles/cong_rtree.dir/rtree/builder.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/builder.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/io.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/io.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/metrics.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/metrics.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/routing_tree.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/routing_tree.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/segments.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/segments.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/svg.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/svg.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/transform.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/transform.cpp.o.d"
  "CMakeFiles/cong_rtree.dir/rtree/validate.cpp.o"
  "CMakeFiles/cong_rtree.dir/rtree/validate.cpp.o.d"
  "libcong_rtree.a"
  "libcong_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
