file(REMOVE_RECURSE
  "libcong_rtree.a"
)
