# Empty compiler generated dependencies file for cong_rtree.
# This may be replaced when dependencies are built.
