
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delay/elmore.cpp" "src/CMakeFiles/cong_delay.dir/delay/elmore.cpp.o" "gcc" "src/CMakeFiles/cong_delay.dir/delay/elmore.cpp.o.d"
  "/root/repo/src/delay/rph.cpp" "src/CMakeFiles/cong_delay.dir/delay/rph.cpp.o" "gcc" "src/CMakeFiles/cong_delay.dir/delay/rph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
