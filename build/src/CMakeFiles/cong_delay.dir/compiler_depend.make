# Empty compiler generated dependencies file for cong_delay.
# This may be replaced when dependencies are built.
