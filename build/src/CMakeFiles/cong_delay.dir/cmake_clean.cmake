file(REMOVE_RECURSE
  "CMakeFiles/cong_delay.dir/delay/elmore.cpp.o"
  "CMakeFiles/cong_delay.dir/delay/elmore.cpp.o.d"
  "CMakeFiles/cong_delay.dir/delay/rph.cpp.o"
  "CMakeFiles/cong_delay.dir/delay/rph.cpp.o.d"
  "libcong_delay.a"
  "libcong_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cong_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
