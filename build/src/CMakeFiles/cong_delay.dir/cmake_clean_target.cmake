file(REMOVE_RECURSE
  "libcong_delay.a"
)
