# Empty dependencies file for bench_fig17_technology.
# This may be replaced when dependencies are built.
