file(REMOVE_RECURSE
  "../bench/bench_fig17_technology"
  "../bench/bench_fig17_technology.pdb"
  "CMakeFiles/bench_fig17_technology.dir/bench_fig17_technology.cpp.o"
  "CMakeFiles/bench_fig17_technology.dir/bench_fig17_technology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
