file(REMOVE_RECURSE
  "../bench/bench_micro_scaling"
  "../bench/bench_micro_scaling.pdb"
  "CMakeFiles/bench_micro_scaling.dir/bench_micro_scaling.cpp.o"
  "CMakeFiles/bench_micro_scaling.dir/bench_micro_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
