# Empty compiler generated dependencies file for bench_crossover_ratio.
# This may be replaced when dependencies are built.
