file(REMOVE_RECURSE
  "../bench/bench_crossover_ratio"
  "../bench/bench_crossover_ratio.pdb"
  "CMakeFiles/bench_crossover_ratio.dir/bench_crossover_ratio.cpp.o"
  "CMakeFiles/bench_crossover_ratio.dir/bench_crossover_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossover_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
