# Empty dependencies file for bench_atree_optimality_stats.
# This may be replaced when dependencies are built.
