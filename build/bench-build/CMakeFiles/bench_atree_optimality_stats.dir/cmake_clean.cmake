file(REMOVE_RECURSE
  "../bench/bench_atree_optimality_stats"
  "../bench/bench_atree_optimality_stats.pdb"
  "CMakeFiles/bench_atree_optimality_stats.dir/bench_atree_optimality_stats.cpp.o"
  "CMakeFiles/bench_atree_optimality_stats.dir/bench_atree_optimality_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atree_optimality_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
