file(REMOVE_RECURSE
  "../bench/bench_fig1_topology_response"
  "../bench/bench_fig1_topology_response.pdb"
  "CMakeFiles/bench_fig1_topology_response.dir/bench_fig1_topology_response.cpp.o"
  "CMakeFiles/bench_fig1_topology_response.dir/bench_fig1_topology_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_topology_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
