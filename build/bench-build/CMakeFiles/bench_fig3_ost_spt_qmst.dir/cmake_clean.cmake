file(REMOVE_RECURSE
  "../bench/bench_fig3_ost_spt_qmst"
  "../bench/bench_fig3_ost_spt_qmst.pdb"
  "CMakeFiles/bench_fig3_ost_spt_qmst.dir/bench_fig3_ost_spt_qmst.cpp.o"
  "CMakeFiles/bench_fig3_ost_spt_qmst.dir/bench_fig3_ost_spt_qmst.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ost_spt_qmst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
