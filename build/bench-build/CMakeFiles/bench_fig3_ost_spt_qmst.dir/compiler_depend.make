# Empty compiler generated dependencies file for bench_fig3_ost_spt_qmst.
# This may be replaced when dependencies are built.
