# Empty dependencies file for bench_simulator_accuracy.
# This may be replaced when dependencies are built.
