file(REMOVE_RECURSE
  "../bench/bench_simulator_accuracy"
  "../bench/bench_simulator_accuracy.pdb"
  "CMakeFiles/bench_simulator_accuracy.dir/bench_simulator_accuracy.cpp.o"
  "CMakeFiles/bench_simulator_accuracy.dir/bench_simulator_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
