# Empty compiler generated dependencies file for bench_table7_assignment_counts.
# This may be replaced when dependencies are built.
