file(REMOVE_RECURSE
  "../bench/bench_table8_combined"
  "../bench/bench_table8_combined.pdb"
  "CMakeFiles/bench_table8_combined.dir/bench_table8_combined.cpp.o"
  "CMakeFiles/bench_table8_combined.dir/bench_table8_combined.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
