# Empty compiler generated dependencies file for bench_critical_sinks.
# This may be replaced when dependencies are built.
