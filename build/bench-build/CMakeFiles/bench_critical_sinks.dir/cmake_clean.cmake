file(REMOVE_RECURSE
  "../bench/bench_critical_sinks"
  "../bench/bench_critical_sinks.pdb"
  "CMakeFiles/bench_critical_sinks.dir/bench_critical_sinks.cpp.o"
  "CMakeFiles/bench_critical_sinks.dir/bench_critical_sinks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_critical_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
