file(REMOVE_RECURSE
  "../bench/bench_ablation_moves"
  "../bench/bench_ablation_moves.pdb"
  "CMakeFiles/bench_ablation_moves.dir/bench_ablation_moves.cpp.o"
  "CMakeFiles/bench_ablation_moves.dir/bench_ablation_moves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
