file(REMOVE_RECURSE
  "../bench/bench_wiresize_granularity"
  "../bench/bench_wiresize_granularity.pdb"
  "CMakeFiles/bench_wiresize_granularity.dir/bench_wiresize_granularity.cpp.o"
  "CMakeFiles/bench_wiresize_granularity.dir/bench_wiresize_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wiresize_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
