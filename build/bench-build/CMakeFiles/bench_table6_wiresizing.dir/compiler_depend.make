# Empty compiler generated dependencies file for bench_table6_wiresizing.
# This may be replaced when dependencies are built.
