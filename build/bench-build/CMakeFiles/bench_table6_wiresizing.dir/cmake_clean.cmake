file(REMOVE_RECURSE
  "../bench/bench_table6_wiresizing"
  "../bench/bench_table6_wiresizing.pdb"
  "CMakeFiles/bench_table6_wiresizing.dir/bench_table6_wiresizing.cpp.o"
  "CMakeFiles/bench_table6_wiresizing.dir/bench_table6_wiresizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_wiresizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
