file(REMOVE_RECURSE
  "../bench/bench_fig4_wiresizing_response"
  "../bench/bench_fig4_wiresizing_response.pdb"
  "CMakeFiles/bench_fig4_wiresizing_response.dir/bench_fig4_wiresizing_response.cpp.o"
  "CMakeFiles/bench_fig4_wiresizing_response.dir/bench_fig4_wiresizing_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wiresizing_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
