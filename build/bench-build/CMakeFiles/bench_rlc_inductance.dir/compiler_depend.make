# Empty compiler generated dependencies file for bench_rlc_inductance.
# This may be replaced when dependencies are built.
