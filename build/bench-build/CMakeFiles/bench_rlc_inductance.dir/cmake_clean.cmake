file(REMOVE_RECURSE
  "../bench/bench_rlc_inductance"
  "../bench/bench_rlc_inductance.pdb"
  "CMakeFiles/bench_rlc_inductance.dir/bench_rlc_inductance.cpp.o"
  "CMakeFiles/bench_rlc_inductance.dir/bench_rlc_inductance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rlc_inductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
