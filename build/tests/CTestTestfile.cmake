# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_rtree[1]_include.cmake")
include("/root/repo/build/tests/test_delay[1]_include.cmake")
include("/root/repo/build/tests/test_atree[1]_include.cmake")
include("/root/repo/build/tests/test_atree_properties[1]_include.cmake")
include("/root/repo/build/tests/test_exact[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_wiresize[1]_include.cmake")
include("/root/repo/build/tests/test_wiresize_properties[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_netgen_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_forest_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_sink_caps[1]_include.cmake")
include("/root/repo/build/tests/test_router_properties[1]_include.cmake")
include("/root/repo/build/tests/test_sim_deep[1]_include.cmake")
include("/root/repo/build/tests/test_htree[1]_include.cmake")
include("/root/repo/build/tests/test_svg_ramp_widths[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_moves_edge_cases[1]_include.cmake")
