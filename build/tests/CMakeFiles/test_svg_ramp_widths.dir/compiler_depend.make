# Empty compiler generated dependencies file for test_svg_ramp_widths.
# This may be replaced when dependencies are built.
