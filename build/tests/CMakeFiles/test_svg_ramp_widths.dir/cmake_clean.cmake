file(REMOVE_RECURSE
  "CMakeFiles/test_svg_ramp_widths.dir/test_svg_ramp_widths.cpp.o"
  "CMakeFiles/test_svg_ramp_widths.dir/test_svg_ramp_widths.cpp.o.d"
  "test_svg_ramp_widths"
  "test_svg_ramp_widths.pdb"
  "test_svg_ramp_widths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svg_ramp_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
