file(REMOVE_RECURSE
  "CMakeFiles/test_sink_caps.dir/test_sink_caps.cpp.o"
  "CMakeFiles/test_sink_caps.dir/test_sink_caps.cpp.o.d"
  "test_sink_caps"
  "test_sink_caps.pdb"
  "test_sink_caps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sink_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
