# Empty dependencies file for test_sink_caps.
# This may be replaced when dependencies are built.
