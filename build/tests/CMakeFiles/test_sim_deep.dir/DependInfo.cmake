
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_deep.cpp" "tests/CMakeFiles/test_sim_deep.dir/test_sim_deep.cpp.o" "gcc" "tests/CMakeFiles/test_sim_deep.dir/test_sim_deep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cong_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_atree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_wiresize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cong_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
