# Empty compiler generated dependencies file for test_sim_deep.
# This may be replaced when dependencies are built.
