file(REMOVE_RECURSE
  "CMakeFiles/test_sim_deep.dir/test_sim_deep.cpp.o"
  "CMakeFiles/test_sim_deep.dir/test_sim_deep.cpp.o.d"
  "test_sim_deep"
  "test_sim_deep.pdb"
  "test_sim_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
