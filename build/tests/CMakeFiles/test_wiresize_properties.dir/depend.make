# Empty dependencies file for test_wiresize_properties.
# This may be replaced when dependencies are built.
