file(REMOVE_RECURSE
  "CMakeFiles/test_wiresize_properties.dir/test_wiresize_properties.cpp.o"
  "CMakeFiles/test_wiresize_properties.dir/test_wiresize_properties.cpp.o.d"
  "test_wiresize_properties"
  "test_wiresize_properties.pdb"
  "test_wiresize_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wiresize_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
