# Empty compiler generated dependencies file for test_htree.
# This may be replaced when dependencies are built.
