file(REMOVE_RECURSE
  "CMakeFiles/test_htree.dir/test_htree.cpp.o"
  "CMakeFiles/test_htree.dir/test_htree.cpp.o.d"
  "test_htree"
  "test_htree.pdb"
  "test_htree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
