file(REMOVE_RECURSE
  "CMakeFiles/test_atree.dir/test_atree.cpp.o"
  "CMakeFiles/test_atree.dir/test_atree.cpp.o.d"
  "test_atree"
  "test_atree.pdb"
  "test_atree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
