# Empty compiler generated dependencies file for test_atree.
# This may be replaced when dependencies are built.
