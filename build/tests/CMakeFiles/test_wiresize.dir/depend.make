# Empty dependencies file for test_wiresize.
# This may be replaced when dependencies are built.
