file(REMOVE_RECURSE
  "CMakeFiles/test_wiresize.dir/test_wiresize.cpp.o"
  "CMakeFiles/test_wiresize.dir/test_wiresize.cpp.o.d"
  "test_wiresize"
  "test_wiresize.pdb"
  "test_wiresize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wiresize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
