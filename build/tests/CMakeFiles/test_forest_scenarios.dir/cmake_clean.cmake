file(REMOVE_RECURSE
  "CMakeFiles/test_forest_scenarios.dir/test_forest_scenarios.cpp.o"
  "CMakeFiles/test_forest_scenarios.dir/test_forest_scenarios.cpp.o.d"
  "test_forest_scenarios"
  "test_forest_scenarios.pdb"
  "test_forest_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forest_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
