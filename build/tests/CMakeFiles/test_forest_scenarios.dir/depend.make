# Empty dependencies file for test_forest_scenarios.
# This may be replaced when dependencies are built.
