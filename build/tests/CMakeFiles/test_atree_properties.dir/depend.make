# Empty dependencies file for test_atree_properties.
# This may be replaced when dependencies are built.
