file(REMOVE_RECURSE
  "CMakeFiles/test_atree_properties.dir/test_atree_properties.cpp.o"
  "CMakeFiles/test_atree_properties.dir/test_atree_properties.cpp.o.d"
  "test_atree_properties"
  "test_atree_properties.pdb"
  "test_atree_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atree_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
