# Empty dependencies file for test_netgen_report.
# This may be replaced when dependencies are built.
