file(REMOVE_RECURSE
  "CMakeFiles/test_netgen_report.dir/test_netgen_report.cpp.o"
  "CMakeFiles/test_netgen_report.dir/test_netgen_report.cpp.o.d"
  "test_netgen_report"
  "test_netgen_report.pdb"
  "test_netgen_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netgen_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
