file(REMOVE_RECURSE
  "CMakeFiles/test_router_properties.dir/test_router_properties.cpp.o"
  "CMakeFiles/test_router_properties.dir/test_router_properties.cpp.o.d"
  "test_router_properties"
  "test_router_properties.pdb"
  "test_router_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
