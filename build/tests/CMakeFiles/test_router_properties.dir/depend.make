# Empty dependencies file for test_router_properties.
# This may be replaced when dependencies are built.
