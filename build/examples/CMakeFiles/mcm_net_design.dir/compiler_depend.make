# Empty compiler generated dependencies file for mcm_net_design.
# This may be replaced when dependencies are built.
