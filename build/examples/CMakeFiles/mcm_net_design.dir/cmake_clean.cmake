file(REMOVE_RECURSE
  "CMakeFiles/mcm_net_design.dir/mcm_net_design.cpp.o"
  "CMakeFiles/mcm_net_design.dir/mcm_net_design.cpp.o.d"
  "mcm_net_design"
  "mcm_net_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_net_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
