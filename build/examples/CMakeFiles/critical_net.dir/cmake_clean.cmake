file(REMOVE_RECURSE
  "CMakeFiles/critical_net.dir/critical_net.cpp.o"
  "CMakeFiles/critical_net.dir/critical_net.cpp.o.d"
  "critical_net"
  "critical_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
