# Empty compiler generated dependencies file for critical_net.
# This may be replaced when dependencies are built.
