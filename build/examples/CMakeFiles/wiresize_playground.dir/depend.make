# Empty dependencies file for wiresize_playground.
# This may be replaced when dependencies are built.
