file(REMOVE_RECURSE
  "CMakeFiles/wiresize_playground.dir/wiresize_playground.cpp.o"
  "CMakeFiles/wiresize_playground.dir/wiresize_playground.cpp.o.d"
  "wiresize_playground"
  "wiresize_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiresize_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
