# Empty dependencies file for batch_router.
# This may be replaced when dependencies are built.
