file(REMOVE_RECURSE
  "CMakeFiles/batch_router.dir/batch_router.cpp.o"
  "CMakeFiles/batch_router.dir/batch_router.cpp.o.d"
  "batch_router"
  "batch_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
