file(REMOVE_RECURSE
  "CMakeFiles/htree_clock.dir/htree_clock.cpp.o"
  "CMakeFiles/htree_clock.dir/htree_clock.cpp.o.d"
  "htree_clock"
  "htree_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htree_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
