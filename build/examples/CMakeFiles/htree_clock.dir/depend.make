# Empty dependencies file for htree_clock.
# This may be replaced when dependencies are built.
