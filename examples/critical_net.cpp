// Critical-sink routing (the paper's Section 6 extension): one sink of a
// high-fanout net is on the critical path and must be as fast as possible.
// Compare the plain A-tree against the critical-sink A-tree, which isolates
// the critical sink on its own source-rooted arborescence.
//
//   $ ./critical_net [seed]
#include <cstdlib>
#include <iostream>

#include "atree/critical.h"
#include "atree/generalized.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

int main(int argc, char** argv)
{
    using namespace cong93;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
    const Technology tech = mcm_technology();

    std::mt19937_64 rng(seed);
    const Net net = random_net(rng, kMcmGrid, 10);
    // Declare the sink farthest from the source critical.
    std::size_t critical = 0;
    for (std::size_t i = 1; i < net.sinks.size(); ++i)
        if (dist(net.source, net.sinks[i]) > dist(net.source, net.sinks[critical]))
            critical = i;

    const AtreeResult plain = build_atree_general(net);
    const CriticalAtreeResult crit = build_atree_critical(net, {critical});

    const auto find_sink_delay = [&](const RoutingTree& tree, Point p) {
        const DelayReport d = measure_delay(tree, tech);
        const auto sinks = tree.sinks();
        for (std::size_t i = 0; i < sinks.size(); ++i)
            if (tree.point(sinks[i]) == p) return d.sink_delays[i];
        return -1.0;
    };
    const Point cp = net.sinks[critical];
    const double plain_crit = find_sink_delay(plain.tree, cp);
    const double crit_crit = find_sink_delay(crit.tree, cp);
    const DelayReport plain_all = measure_delay(plain.tree, tech);
    const DelayReport crit_all = measure_delay(crit.tree, tech);

    std::cout << "10-sink MCM net, critical sink at (" << cp.x << ',' << cp.y
              << ") -- " << dist(net.source, cp) << " grids from the source\n\n";
    TextTable t({"metric", "plain A-tree", "critical-sink A-tree"});
    t.add_row({"wirelength", std::to_string(plain.cost), std::to_string(crit.cost)});
    t.add_row({"critical sink delay (ns)", fmt_ns(plain_crit), fmt_ns(crit_crit)});
    t.add_row({"mean sink delay (ns)", fmt_ns(plain_all.mean), fmt_ns(crit_all.mean)});
    t.add_row({"max sink delay (ns)", fmt_ns(plain_all.max), fmt_ns(crit_all.max)});
    t.print(std::cout);
    std::cout << "\nThe critical sink gets faster (its path carries no branch "
                 "load); the price is extra wire where the plain A-tree shared.\n";
    return 0;
}
