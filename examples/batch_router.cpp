// Batch router: route every net of a netlist file (or a generated batch)
// through the full A-tree + wiresizing flow and report per-net and aggregate
// results.  Demonstrates the text I/O layer (rtree/io.h) and the flow a
// global router would invoke per net.
//
// Nets are routed concurrently on the batch thread pool (CONG93_THREADS
// overrides the worker count; results are index-ordered, so the output is
// byte-identical to a serial run).
//
//   $ ./batch_router                # 20 generated MCM nets
//   $ ./batch_router nets.txt      # nets from a file (see format below)
//   $ ./batch_router --dump-format # print an example netlist and exit
#include <fstream>
#include <iostream>
#include <sstream>

#include "atree/generalized.h"
#include "batch/batch.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/io.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

int main(int argc, char** argv)
{
    using namespace cong93;

    std::vector<Net> nets;
    if (argc > 1 && std::string(argv[1]) == "--dump-format") {
        std::cout << "# cong93 netlist format (comments allowed)\n"
                  << format_nets(random_nets(1, 2, 1000, 3));
        return 0;
    }
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        nets = parse_nets(buf.str());
    } else {
        nets = random_nets(2718, 20, kMcmGrid, 10);
    }

    const Technology tech = mcm_technology();
    const WidthSet widths = WidthSet::uniform_steps(4);

    TextTable t({"net", "sinks", "length", "radius", "uniform delay (ns)",
                 "wiresized delay (ns)", "gain"});
    struct NetResult {
        Length cost = 0;
        Length radius = 0;
        double before = 0.0;
        double after = 0.0;
    };
    // Fan the independent per-net pipelines out over the thread pool; each
    // worker writes only its own slot, so the table below is byte-identical
    // to a serial run.
    const std::vector<NetResult> results =
        batch_map<NetResult>(nets.size(), [&](std::size_t i) {
            const AtreeResult routed = build_atree_general(nets[i]);
            const SegmentDecomposition segs(routed.tree);
            const WiresizeContext ctx(segs, tech, widths);
            const CombinedResult sized = grewsa_owsa(ctx);
            NetResult r;
            r.cost = routed.cost;
            r.radius = radius(routed.tree);
            r.before = measure_delay(routed.tree, tech).mean;
            r.after =
                measure_delay_wiresized(segs, tech, widths, sized.assignment).mean;
            return r;
        });
    double total_before = 0.0, total_after = 0.0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const NetResult& r = results[i];
        total_before += r.before;
        total_after += r.after;
        t.add_row({std::to_string(i), std::to_string(nets[i].sinks.size()),
                   std::to_string(r.cost), std::to_string(r.radius),
                   fmt_ns(r.before), fmt_ns(r.after),
                   fmt_pct_delta(r.before, r.after)});
    }
    t.print(std::cout);
    std::cout << "\naggregate mean delay: " << fmt_ns(total_before / nets.size())
              << " ns -> " << fmt_ns(total_after / nets.size()) << " ns ("
              << fmt_pct_delta(total_before, total_after) << ")\n";

    // Round-trip demo: serialize the last tree and parse it back.
    const AtreeResult last = build_atree_general(nets.back());
    const std::string text = format_tree(last.tree);
    const RoutingTree parsed = parse_tree(text);
    std::cout << "\nserialized last tree (" << text.size() << " bytes), reparsed "
              << parsed.node_count() << " nodes, length " << total_length(parsed)
              << '\n';
    return 0;
}
