// Technology explorer: sweep the resistance ratio Rd/R0 (the quantity that
// governs the paper's entire analysis) and watch the best topology flip from
// Steiner (wirelength) to A-tree (pathlength) as the ratio falls -- the
// Section 5.4 story in one table.
//
//   $ ./technology_explorer
#include <iostream>

#include "atree/generalized.h"
#include "baseline/one_steiner.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

int main()
{
    using namespace cong93;
    const int kNets = 25;

    std::cout << "Average two-pole delay of A-tree vs batched 1-Steiner on "
              << kNets << " 8-sink nets (0.5cm x 0.5cm region) while scaling\n"
              << "the driver transistor (larger driver => smaller Rd/R0).\n\n";

    const auto nets = random_nets(99, kNets, kIcGrid, 8);
    TextTable t({"technology", "driver scale", "Rd/R0 (1e6 um)", "A-tree (ns)",
                 "1-Steiner (ns)", "A-tree advantage"});
    for (const Technology& base : table9_technologies()) {
        for (const double scale : {1.0, 4.0, 10.0}) {
            const Technology tech = base.with_driver_scale(scale);
            double d_a = 0.0, d_s = 0.0;
            for (const Net& net : nets) {
                d_a += measure_delay(build_atree_general(net).tree, tech).mean;
                d_s += measure_delay(build_one_steiner(net).tree, tech).mean;
            }
            d_a /= kNets;
            d_s /= kNets;
            t.add_row({base.name, "x" + fmt_fixed(scale, 0),
                       fmt_fixed(tech.resistance_ratio_um() / 1e6, 3), fmt_ns(d_a),
                       fmt_ns(d_s), fmt_pct_delta(d_a, d_s)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading: a positive advantage means the 1-Steiner tree is "
                 "that much slower than the A-tree.  The advantage should grow "
                 "as the driver scales up and as the technology shrinks.\n";
    return 0;
}
