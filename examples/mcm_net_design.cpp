// MCM net design walkthrough: compare every router in the library on one
// high-fanout MCM net, then wire-size the winner -- the workload the paper's
// introduction motivates (high-performance MCM routing).
//
//   $ ./mcm_net_design [seed]
#include <cstdlib>
#include <iostream>

#include "atree/generalized.h"
#include "baseline/brbc.h"
#include "baseline/mst.h"
#include "baseline/one_steiner.h"
#include "baseline/spt.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

int main(int argc, char** argv)
{
    using namespace cong93;
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

    const Technology tech = mcm_technology();
    std::mt19937_64 rng(seed);
    const Net net = random_net(rng, kMcmGrid, 12);
    std::cout << "12-sink net on the 100mm x 100mm MCM substrate (seed " << seed
              << ")\n\n";

    TextTable t({"router", "length", "radius", "sum sink pl", "mean delay (ns)",
                 "max delay (ns)"});
    const auto row = [&](const std::string& name, const RoutingTree& tree) {
        const DelayReport d = measure_delay(tree, tech);
        t.add_row({name, std::to_string(total_length(tree)),
                   std::to_string(radius(tree)),
                   std::to_string(sum_sink_path_lengths(tree)),
                   fmt_ns(d.mean), fmt_ns(d.max)});
    };
    const RoutingTree atree = build_atree_general(net).tree;
    row("A-tree", atree);
    row("batched 1-Steiner", build_one_steiner(net).tree);
    row("MST", build_mst_tree(net));
    row("SPT", build_spt(net));
    row("BRBC eps=0.5", build_brbc(net, 0.5));
    row("BRBC eps=1.0", build_brbc(net, 1.0));
    t.print(std::cout);

    // Wire-size the A-tree with the Table 6 width menu.
    const SegmentDecomposition segs(atree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(6));
    const CombinedResult sized = grewsa_owsa(ctx);
    const DelayReport before = measure_delay(atree, tech);
    const DelayReport after =
        measure_delay_wiresized(segs, tech, ctx.widths(), sized.assignment);
    std::cout << "\nwiresized A-tree (widths {W1..6W1}, W1 = "
              << tech.base_width_um << " um):\n  mean delay " << fmt_ns(before.mean)
              << " ns -> " << fmt_ns(after.mean) << " ns ("
              << fmt_pct_delta(before.mean, after.mean) << ")\n  widths per segment:";
    for (std::size_t i = 0; i < segs.count(); ++i)
        std::cout << ' ' << ctx.widths()[sized.assignment[i]];
    std::cout << '\n';
    return 0;
}
