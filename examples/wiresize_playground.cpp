// Wiresizing playground: build a net's A-tree, print the segment structure,
// run GREWSA from both ends and OWSA, and visualize the monotone "wavefront"
// of widths (Section 4's Figure 15 idea) along every source-to-leaf path.
//
//   $ ./wiresize_playground [sinks] [r]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "atree/generalized.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/counting.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"

int main(int argc, char** argv)
{
    using namespace cong93;
    const int sinks = argc > 1 ? std::atoi(argv[1]) : 10;
    const int r = argc > 2 ? std::atoi(argv[2]) : 4;

    const Technology tech = mcm_technology();
    std::mt19937_64 rng(123);
    const Net net = random_net(rng, kMcmGrid, sinks);
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));

    std::cout << segs.count() << " segments; assignment space: "
              << fmt_sci(exhaustive_assignment_count(segs.count(), r), 2)
              << " raw, " << fmt_sci(monotone_assignment_count(segs, r), 2)
              << " monotone\n\n";

    const GrewsaResult lo = grewsa_from_min(ctx);
    const GrewsaResult hi = grewsa_from_max(ctx);
    const OwsaResult o = owsa(ctx);
    const CombinedResult comb = grewsa_owsa(ctx);

    TextTable t({"algorithm", "RPH delay (ns)", "sweeps/calls", "examined"});
    t.add_row({"uniform minimum width",
               fmt_ns(ctx.delay(min_assignment(segs.count())), 3), "-", "-"});
    t.add_row({"GREWSA from f_lower", fmt_ns(lo.delay, 3), std::to_string(lo.sweeps),
               "-"});
    t.add_row({"GREWSA from f_upper", fmt_ns(hi.delay, 3), std::to_string(hi.sweeps),
               "-"});
    t.add_row({"OWSA (exact)", fmt_ns(o.delay, 3), std::to_string(o.calls),
               std::to_string(o.assignments_examined)});
    t.add_row({"GREWSA-OWSA (exact)", fmt_ns(comb.delay, 3),
               std::to_string(comb.owsa_calls),
               std::to_string(comb.assignments_examined)});
    t.print(std::cout);

    // Show the monotone width profile along each source-to-leaf chain.
    std::cout << "\nwidth profile per source-to-leaf path (stem -> leaf):\n";
    std::vector<std::vector<int>> leaf_paths;
    for (std::size_t i = 0; i < segs.count(); ++i) {
        if (!segs[i].children.empty()) continue;
        std::vector<int> path;
        for (int s = static_cast<int>(i); s != kNoSegment;
             s = segs[static_cast<std::size_t>(s)].parent)
            path.insert(path.begin(), s);
        leaf_paths.push_back(path);
    }
    for (const auto& path : leaf_paths) {
        std::cout << "  ";
        for (const int s : path)
            std::cout << ctx.widths()[comb.assignment[static_cast<std::size_t>(s)]]
                      << "(l=" << segs[static_cast<std::size_t>(s)].length << ") ";
        std::cout << '\n';
    }
    std::cout << "\nEvery profile is non-increasing: the monotone property "
                 "(Theorem 4) in action.\n";
    return 0;
}
