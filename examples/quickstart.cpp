// Quickstart: route one net with the A-tree algorithm, size its wires, and
// simulate the result.  This is the 60-second tour of the public API.
//
//   $ ./quickstart
#include <iostream>

#include "atree/generalized.h"
#include "rtree/io.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

int main()
{
    using namespace cong93;

    // 1. A signal net: one driver, four sinks (coordinates in grid units;
    //    the MCM technology uses a 25 um pitch).
    const Net net{/*source=*/{1000, 1000},
                  /*sinks=*/{{3000, 1400}, {2200, 3100}, {200, 2400}, {1800, 150}}};
    const Technology tech = mcm_technology();

    // 2. Topology: a generalized A-tree (every source-to-node path is a
    //    rectilinear shortest path; wirelength near-optimal).
    const AtreeResult routed = build_atree_general(net);
    std::cout << "A-tree: " << describe(routed.tree) << '\n'
              << "  wirelength " << routed.cost << " (lower bound "
              << routed.lower_bound() << "), " << routed.safe_moves
              << " safe / " << routed.heuristic_moves << " heuristic moves\n";

    // 3. Wiresizing: optimal widths from {W1, 2W1, 3W1, 4W1} via GREWSA-OWSA.
    const SegmentDecomposition segments(routed.tree);
    const WiresizeContext ctx(segments, tech, WidthSet::uniform_steps(4));
    const CombinedResult sized = grewsa_owsa(ctx);
    std::cout << "wiresizing: RPH bound "
              << ctx.delay(min_assignment(segments.count())) * 1e9 << " ns -> "
              << sized.delay * 1e9 << " ns (" << segments.count()
              << " segments, bounds " << (sized.bounds_tight ? "tight" : "loose")
              << ")\n";

    // 4. Simulate with the two-pole model (50% threshold step delays).
    const DelayReport before = measure_delay(routed.tree, tech);
    const DelayReport after =
        measure_delay_wiresized(segments, tech, ctx.widths(), sized.assignment);
    std::cout << "simulated mean sink delay: " << before.mean * 1e9 << " ns -> "
              << after.mean * 1e9 << " ns\n";
    return 0;
}
