// Visualization demo: render one net's routing under every router as SVG
// files, plus the wiresized A-tree with stroke widths proportional to the
// optimal wire widths (the Figure 15 "wavefront" picture).
//
//   $ ./visualize [out_dir] [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "atree/generalized.h"
#include "baseline/brbc.h"
#include "baseline/mst.h"
#include "baseline/one_steiner.h"
#include "baseline/spt.h"
#include "netgen/netgen.h"
#include "rtree/svg.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

int main(int argc, char** argv)
{
    using namespace cong93;
    const std::string dir = argc > 1 ? argv[1] : ".";
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

    std::mt19937_64 rng(seed);
    const Net net = random_net(rng, kMcmGrid, 9);
    const Technology tech = mcm_technology();

    const auto save = [&](const std::string& name, const std::string& svg) {
        const std::string path = dir + "/" + name + ".svg";
        std::ofstream of(path);
        if (!of) {
            std::cerr << "cannot write " << path << '\n';
            std::exit(1);
        }
        of << svg;
        std::cout << "wrote " << path << '\n';
    };

    const RoutingTree atree = build_atree_general(net).tree;
    save("atree", to_svg(atree));
    save("steiner", to_svg(build_one_steiner(net).tree));
    save("mst", to_svg(build_mst_tree(net)));
    save("spt", to_svg(build_spt(net)));
    save("brbc05", to_svg(build_brbc(net, 0.5)));

    // Wiresized A-tree: stroke width follows the optimal assignment.
    const SegmentDecomposition segs(atree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    const CombinedResult sized = grewsa_owsa(ctx);
    std::vector<double> norm(segs.count());
    for (std::size_t i = 0; i < segs.count(); ++i)
        norm[i] = ctx.widths()[sized.assignment[i]];
    save("atree_wiresized", to_svg_wiresized(segs, norm));

    std::cout << "\nOpen the .svg files in a browser; the wiresized A-tree "
                 "shows the monotone width wavefront radiating from the red "
                 "driver square.\n";
    return 0;
}
