// H-tree clock distribution (Fisher/Kung-style, cited in the paper's
// introduction as the prior wiresizing art): build a perfect H-tree on the
// MCM substrate, measure skew, and wire-size it with GREWSA-OWSA.  The tree
// is exactly symmetric, so skew must stay (numerically) zero before and
// after wiresizing while the delay itself drops.
//
//   $ ./htree_clock [levels]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "netgen/htree.h"
#include "report/table.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

int main(int argc, char** argv)
{
    using namespace cong93;
    const int levels = argc > 1 ? std::atoi(argv[1]) : 3;
    const Technology tech = mcm_technology();

    const RoutingTree tree = build_htree(levels, 1024, Point{2000, 2000});
    const SegmentDecomposition segs(tree);
    std::cout << "H-tree: " << levels << " levels, " << tree.sinks().size()
              << " sinks, " << segs.count() << " segments, wirelength "
              << total_length(tree) << " grids\n\n";

    const auto skew = [](const DelayReport& d) {
        const auto [lo, hi] =
            std::minmax_element(d.sink_delays.begin(), d.sink_delays.end());
        return *hi - *lo;
    };

    const DelayReport uniform = measure_delay(tree, tech);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    const CombinedResult sized = grewsa_owsa(ctx);
    const DelayReport wide =
        measure_delay_wiresized(segs, tech, ctx.widths(), sized.assignment);

    TextTable t({"metric", "uniform width", "wiresized (GREWSA-OWSA)"});
    t.add_row({"mean sink delay (ns)", fmt_ns(uniform.mean), fmt_ns(wide.mean)});
    t.add_row({"max sink delay (ns)", fmt_ns(uniform.max), fmt_ns(wide.max)});
    t.add_row({"skew (ps)", fmt_fixed(skew(uniform) * 1e12, 3),
               fmt_fixed(skew(wide) * 1e12, 3)});
    t.print(std::cout);

    // Width wavefront from the driver: widths along a root-to-leaf path.
    std::cout << "\nwidths along one root-to-leaf path:";
    int seg = segs.roots()[0];
    for (;;) {
        std::cout << ' ' << ctx.widths()[sized.assignment[static_cast<std::size_t>(seg)]];
        if (segs[static_cast<std::size_t>(seg)].children.empty()) break;
        seg = segs[static_cast<std::size_t>(seg)].children.front();
    }
    std::cout << "\n\nSymmetry keeps the skew at zero while wiresizing cuts the "
                 "delay -- the Fisher/Kung observation the paper generalizes "
                 "to arbitrary topologies.\n";
    return 0;
}
