// Table 6: wiresizing algorithm comparison on 100 16-sink A-trees (MCM):
// average RPH delay and average runtime of GREWSA (from f_lower and from
// f_upper), OWSA, and GREWSA-OWSA, for r = 2..6 widths {W1, 2W1, ..., rW1}.
#include <vector>

#include "atree/generalized.h"
#include "batch/batch.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "tech/technology.h"
#include "wiresize/bottom_up.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Table 6 -- wiresizing optimization (MCM, 16-sink A-trees)",
                  "Cong/Leung/Zhou 1993, Table 6");
    const Technology tech = mcm_technology();
    const auto nets = random_nets(2006, bench::kNetsPerConfig, kMcmGrid, 16);

    std::vector<SegmentDecomposition> trees;
    trees.reserve(nets.size());
    std::vector<RoutingTree> storage;
    storage.reserve(nets.size());
    double avg_segments = 0.0;
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
        avg_segments += static_cast<double>(trees.back().count());
    }
    avg_segments /= static_cast<double>(nets.size());
    std::cout << "average segments per tree: " << fmt_fixed(avg_segments, 2) << "\n\n";

    TextTable delay_t({"r", "no wiresizing (ns)", "GREWSA f_lower (ns)",
                       "GREWSA f_upper (ns)", "OWSA (ns)", "GREWSA-OWSA (ns)",
                       "bottom-up DP (ns)"});
    TextTable time_t({"r", "GREWSA f_lower (s)", "GREWSA f_upper (s)", "OWSA (s)",
                      "GREWSA-OWSA (s)"});

    for (int r = 2; r <= 6; ++r) {
        struct NetResult {
            double d_none = 0, d_lo = 0, d_hi = 0, d_owsa = 0, d_comb = 0, d_bu = 0;
            double t_lo = 0, t_hi = 0, t_owsa = 0, t_comb = 0;
        };
        // Independent per-net work fans out over the batch pool; delays are
        // reduced serially in index order below, so the delay table is
        // byte-identical to a serial run (runtimes are wall-clock and vary
        // run to run regardless of threading).
        const std::vector<NetResult> per_net =
            batch_map<NetResult>(trees.size(), [&](std::size_t ni) {
                const auto& segs = trees[ni];
                const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
                NetResult res;
                res.d_none = ctx.delay(min_assignment(segs.count()));
                GrewsaResult lo, hi;
                OwsaResult ow;
                CombinedResult comb;
                res.t_lo = bench::time_seconds([&] { lo = grewsa_from_min(ctx); });
                res.t_hi = bench::time_seconds([&] { hi = grewsa_from_max(ctx); });
                res.t_owsa = bench::time_seconds([&] { ow = owsa(ctx); });
                res.t_comb = bench::time_seconds([&] { comb = grewsa_owsa(ctx); });
                res.d_lo = lo.delay;
                res.d_hi = hi.delay;
                res.d_owsa = ow.delay;
                res.d_comb = comb.delay;
                res.d_bu = bottom_up_wiresize(ctx).delay;
                return res;
            });
        double d_none = 0, d_lo = 0, d_hi = 0, d_owsa = 0, d_comb = 0, d_bu = 0;
        double t_lo = 0, t_hi = 0, t_owsa = 0, t_comb = 0;
        for (const NetResult& res : per_net) {
            d_none += res.d_none;
            d_lo += res.d_lo;
            d_hi += res.d_hi;
            d_owsa += res.d_owsa;
            d_comb += res.d_comb;
            d_bu += res.d_bu;
            t_lo += res.t_lo;
            t_hi += res.t_hi;
            t_owsa += res.t_owsa;
            t_comb += res.t_comb;
        }
        const double n = static_cast<double>(trees.size());
        delay_t.add_row({std::to_string(r), fmt_ns(d_none / n, 4), fmt_ns(d_lo / n, 4),
                         fmt_ns(d_hi / n, 4), fmt_ns(d_owsa / n, 4),
                         fmt_ns(d_comb / n, 4), fmt_ns(d_bu / n, 4)});
        time_t.add_row({std::to_string(r), fmt_sci(t_lo / n, 2), fmt_sci(t_hi / n, 2),
                        fmt_sci(t_owsa / n, 2), fmt_sci(t_comb / n, 2)});
    }
    std::cout << "Average RPH delay:\n";
    delay_t.print(std::cout);
    std::cout << "\nAverage runtime per net:\n";
    time_t.print(std::cout);
    std::cout << "\nPaper's shape: wiresizing cuts the delay by ~30% (r=2) to "
                 "~50% (r=6); GREWSA is near-optimal from either start; OWSA "
                 "runtime blows up with r while GREWSA-OWSA stays flat.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
