// Critical-sink extension study (Section 6 future work): isolating the most
// critical sink on its own source-rooted arborescence trades total wire for
// critical-path delay.  100 10-sink MCM nets; the farthest sink is critical.
#include <vector>

#include "atree/critical.h"
#include "atree/generalized.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Critical-sink A-trees",
                  "extension of Cong/Leung/Zhou 1993, Section 6");
    const Technology tech = mcm_technology();
    const auto nets = random_nets(9900, bench::kNetsPerConfig, kMcmGrid, 10);

    double len_plain = 0, len_crit = 0;
    double crit_delay_plain = 0, crit_delay_crit = 0;
    double mean_plain = 0, mean_crit = 0;
    int improved = 0;
    for (const Net& net : nets) {
        std::size_t critical = 0;
        for (std::size_t i = 1; i < net.sinks.size(); ++i)
            if (dist(net.source, net.sinks[i]) > dist(net.source, net.sinks[critical]))
                critical = i;
        const Point cp = net.sinks[critical];

        const AtreeResult plain = build_atree_general(net);
        const CriticalAtreeResult crit = build_atree_critical(net, {critical});
        len_plain += static_cast<double>(plain.cost);
        len_crit += static_cast<double>(crit.cost);

        const auto delay_at = [&](const RoutingTree& tree, double* mean_out) {
            const DelayReport d = measure_delay(tree, tech, SimMethod::two_pole,
                                                bench::kPaperThreshold);
            *mean_out += d.mean;
            const auto sinks = tree.sinks();
            for (std::size_t i = 0; i < sinks.size(); ++i)
                if (tree.point(sinks[i]) == cp) return d.sink_delays[i];
            return -1.0;
        };
        const double dp = delay_at(plain.tree, &mean_plain);
        const double dc = delay_at(crit.tree, &mean_crit);
        crit_delay_plain += dp;
        crit_delay_crit += dc;
        improved += dc < dp;
    }

    const double n = bench::kNetsPerConfig;
    TextTable t({"metric", "plain A-tree", "critical-sink A-tree", "delta"});
    t.add_row({"avg wirelength", fmt_fixed(len_plain / n, 0),
               fmt_fixed(len_crit / n, 0), fmt_pct_delta(len_plain, len_crit)});
    t.add_row({"avg critical-sink delay (ns)", fmt_ns(crit_delay_plain / n),
               fmt_ns(crit_delay_crit / n),
               fmt_pct_delta(crit_delay_plain, crit_delay_crit)});
    t.add_row({"avg mean-sink delay (ns)", fmt_ns(mean_plain / n),
               fmt_ns(mean_crit / n), fmt_pct_delta(mean_plain, mean_crit)});
    t.add_row({"nets with faster critical sink", "-",
               std::to_string(improved) + "/" + std::to_string(bench::kNetsPerConfig),
               "-"});
    t.print(std::cout);
    std::cout << "\nExpected: the critical sink speeds up on most nets for a "
                 "modest wirelength premium, the behaviour the paper's "
                 "'forbidden region' sketch aims at.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
