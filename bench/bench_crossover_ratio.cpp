// Resistance-ratio crossover study -- the quantitative version of the
// paper's Section 2 thesis: "the relative importance of these terms is
// determined by the ratio Rd/R0".  Sweeping the driver resistance over four
// decades on fixed MCM-geometry nets shows where the wirelength-optimal
// Steiner tree stops winning and the path-length-optimal A-tree takes over,
// and where wiresizing stops helping (wide wires only pay when wire
// resistance matters).
#include <cmath>
#include <vector>

#include "atree/generalized.h"
#include "baseline/one_steiner.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Resistance-ratio crossover sweep",
                  "Cong/Leung/Zhou 1993, Section 2 (quantified)");
    Technology tech = mcm_technology();
    const int kNets = 40;
    const auto nets = random_nets(7700, kNets, kMcmGrid, 8);

    // Topologies are fixed; only Rd changes.
    std::vector<RoutingTree> atrees, steiners;
    for (const Net& net : nets) {
        atrees.push_back(build_atree_general(net).tree);
        steiners.push_back(build_one_steiner(net).tree);
    }

    TextTable t({"Rd (ohm)", "Rd/R0 (um)", "A-tree (ns)", "1-Steiner (ns)",
                 "A-tree advantage", "wiresizing gain (A-tree)"});
    for (const double rd : {0.25, 2.5, 25.0, 250.0, 2500.0, 25000.0}) {
        tech.driver_resistance_ohm = rd;
        double d_at = 0, d_st = 0, d_ws = 0;
        for (int i = 0; i < kNets; ++i) {
            d_at += measure_delay(atrees[static_cast<std::size_t>(i)], tech,
                                  SimMethod::two_pole, bench::kPaperThreshold)
                        .mean;
            d_st += measure_delay(steiners[static_cast<std::size_t>(i)], tech,
                                  SimMethod::two_pole, bench::kPaperThreshold)
                        .mean;
            const SegmentDecomposition segs(atrees[static_cast<std::size_t>(i)]);
            const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
            const CombinedResult sized = grewsa_owsa(ctx);
            d_ws += measure_delay_wiresized(segs, tech, ctx.widths(),
                                            sized.assignment, SimMethod::two_pole,
                                            bench::kPaperThreshold)
                        .mean;
        }
        t.add_row({fmt_fixed(rd, 2),
                   fmt_fixed(rd / tech.unit_wire_resistance_ohm, 0),
                   fmt_ns(d_at / kNets), fmt_ns(d_st / kNets),
                   fmt_pct_delta(d_at, d_st), fmt_pct_delta(d_at, d_ws)});
    }
    t.print(std::cout);
    std::cout << "\nReading: positive 'A-tree advantage' = the Steiner tree is "
                 "slower.  Expected: at tiny Rd/R0 the A-tree wins big and "
                 "wiresizing is most valuable; at huge Rd/R0 total wire "
                 "capacitance dominates, the Steiner tree wins, and wiresizing "
                 "degenerates to minimum width (zero gain).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
