// Shared helpers for the table/figure reproduction binaries.
#ifndef CONG93_BENCH_COMMON_H
#define CONG93_BENCH_COMMON_H

#include <chrono>
#include <iostream>
#include <numeric>
#include <vector>

namespace cong93::bench {

/// Wall-clock seconds of fn().
template <typename Fn>
double time_seconds(Fn&& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

inline double mean(const std::vector<double>& v)
{
    if (v.empty()) return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

/// Standard experiment banner.
inline void banner(const char* title, const char* paper_ref)
{
    std::cout << "==============================================================\n"
              << title << '\n'
              << "Reproduces: " << paper_ref << '\n'
              << "==============================================================\n";
}

/// Number of random nets per configuration (the paper uses 100 everywhere).
inline constexpr int kNetsPerConfig = 100;

/// Delay threshold used for the paper's reported delays.  Calibration: with
/// a 50% threshold our two-pole delays are ~1/3 of the paper's Table 5/8
/// values, while a 90% threshold reproduces them closely (8.07/10.49/14.92ns
/// for 4/8/16-sink A-trees), consistent with the RPH-bound-style delay
/// definition used by the two-pole simulator of [18].
inline constexpr double kPaperThreshold = 0.9;

}  // namespace cong93::bench

#endif  // CONG93_BENCH_COMMON_H
