// Simulator accuracy study: our reconstruction of the paper's two-pole
// simulator [18] versus the backward-Euler transient reference, plus the
// Pade[1/2] (three-moment) extension that repairs the two-pole model's
// known near-sink overestimate.  Per-sink relative errors on the Table 5
// MCM net population at both the 50% and 90% thresholds.
#include <algorithm>
#include <cmath>
#include <vector>

#include "atree/generalized.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/transient.h"
#include "sim/two_pole.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

struct ErrStats {
    std::vector<double> errs;
    void add(double approx, double ref)
    {
        if (ref > 0.0) errs.push_back(std::abs(approx - ref) / ref);
    }
    double mean() const { return bench::mean(errs); }
    double p95() const
    {
        if (errs.empty()) return 0.0;
        std::vector<double> v = errs;
        std::sort(v.begin(), v.end());
        return v[static_cast<std::size_t>(0.95 * static_cast<double>(v.size() - 1))];
    }
    double worst() const
    {
        return errs.empty() ? 0.0 : *std::max_element(errs.begin(), errs.end());
    }
};

void run()
{
    bench::banner("Simulator accuracy: two-pole [18] vs Pade[1/2] vs transient",
                  "validation of the reconstructed simulator (not a paper table)");
    const Technology tech = mcm_technology();

    TextTable t({"sinks", "threshold", "two-pole mean err", "two-pole p95",
                 "two-pole worst", "Pade mean err", "Pade p95", "Pade worst"});
    for (const int sinks : {4, 8, 16}) {
        const auto nets =
            random_nets(6600 + static_cast<std::uint64_t>(sinks), 50, kMcmGrid, sinks);
        for (const double thr : {0.5, 0.9}) {
            ErrStats tp_err, pd_err;
            for (const Net& net : nets) {
                const RcTree rc =
                    RcTree::from_routing_tree(build_atree_general(net).tree, tech, 8);
                const auto tp = two_pole_sink_delays(rc, thr);
                const auto pd = pade_sink_delays(rc, thr);
                const auto tr = transient_sink_delays(rc, thr);
                for (std::size_t i = 0; i < tr.size(); ++i) {
                    tp_err.add(tp[i], tr[i]);
                    pd_err.add(pd[i], tr[i]);
                }
            }
            t.add_row({std::to_string(sinks), fmt_fixed(thr, 2),
                       fmt_fixed(100.0 * tp_err.mean(), 1) + "%",
                       fmt_fixed(100.0 * tp_err.p95(), 1) + "%",
                       fmt_fixed(100.0 * tp_err.worst(), 1) + "%",
                       fmt_fixed(100.0 * pd_err.mean(), 1) + "%",
                       fmt_fixed(100.0 * pd_err.p95(), 1) + "%",
                       fmt_fixed(100.0 * pd_err.worst(), 1) + "%"});
        }
    }
    t.print(std::cout);
    std::cout << "\nExpected: the two-pole model is tight at the 90% threshold "
                 "used for the paper's tables but can badly overestimate "
                 "electrically-near sinks at 50%; the three-moment Pade fit "
                 "repairs the worst cases.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
