// Table 7: number of assignments examined by exhaustive enumeration (with
// and without the monotone property), OWSA, and GREWSA-OWSA, plus the
// average number of admissible width choices per segment -- on the same
// 16-sink A-tree population as Table 6.  These counts are machine
// independent and should reproduce the paper's magnitudes directly.
#include <vector>

#include "atree/generalized.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/counting.h"
#include "wiresize/owsa.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Table 7 -- assignment-space pruning (MCM, 16-sink A-trees)",
                  "Cong/Leung/Zhou 1993, Table 7");
    const Technology tech = mcm_technology();
    const auto nets = random_nets(2006, bench::kNetsPerConfig, kMcmGrid, 16);

    std::vector<RoutingTree> storage;
    storage.reserve(nets.size());
    std::vector<SegmentDecomposition> trees;
    trees.reserve(nets.size());
    double avg_segments = 0.0;
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
        avg_segments += static_cast<double>(trees.back().count());
    }
    avg_segments /= static_cast<double>(nets.size());
    std::cout << "average segments per tree: " << fmt_fixed(avg_segments, 2)
              << " (paper: 32.53)\n\n";

    TextTable t({"r", "exhaustive", "exhaustive (with MP)", "OWSA",
                 "GREWSA-OWSA", "avg choices/seg OWSA", "avg choices/seg G-O"});
    for (int r = 2; r <= 6; ++r) {
        double exh = 0, mono = 0, owsa_cnt = 0, comb_cnt = 0, comb_choices = 0;
        for (const auto& segs : trees) {
            const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
            exh += exhaustive_assignment_count(segs.count(), r);
            mono += monotone_assignment_count(segs, r);
            owsa_cnt += static_cast<double>(owsa(ctx).assignments_examined);
            const CombinedResult c = grewsa_owsa(ctx);
            comb_cnt += static_cast<double>(c.assignments_examined);
            comb_choices += c.avg_choices_per_segment();
        }
        const double n = static_cast<double>(trees.size());
        t.add_row({std::to_string(r), fmt_sci(exh / n, 2), fmt_sci(mono / n, 2),
                   fmt_sci(owsa_cnt / n, 2), fmt_sci(comb_cnt / n, 2),
                   fmt_fixed(r, 4), fmt_fixed(comb_choices / n, 4)});
    }
    t.print(std::cout);
    std::cout << "\nPaper's shape: exhaustive counts are astronomically large, "
                 "the monotone property removes many orders of magnitude, OWSA "
                 "reduces to polynomially few, and the GREWSA bounds pin almost "
                 "every segment (counts near 1, choices/segment near 1.0).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
