// Inductance study (Section 6 future work; Table 4 supplies the MCM wire
// inductance of 380 fH/um).  Questions answered:
//  1. How much does inductance change the MCM delays the paper reports with
//     a pure-RC model?  (Small, monotone increase -- the RC rankings stand.)
//  2. Does the A-tree's advantage over 1-Steiner survive RLC?  (Yes.)
//  3. Can the two-pole model track the RLC transient?  (Underdamped cases
//     are reported with both simulators.)
#include <vector>

#include "atree/generalized.h"
#include "baseline/one_steiner.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Inductance ablation (MCM RLC vs RC)",
                  "extension of Cong/Leung/Zhou 1993, Section 6 / Table 4");
    const Technology tech = mcm_technology();

    TextTable t({"# sinks", "A-tree RC (ns)", "A-tree RLC (ns)", "1-Steiner RC (ns)",
                 "1-Steiner RLC (ns)", "A-tree wins (RC)", "A-tree wins (RLC)"});
    for (const int sinks : {4, 8, 16}) {
        const auto nets =
            random_nets(8800 + static_cast<std::uint64_t>(sinks), 50, kMcmGrid, sinks);
        double a_rc = 0, a_rlc = 0, s_rc = 0, s_rlc = 0;
        int wins_rc = 0, wins_rlc = 0;
        for (const Net& net : nets) {
            const RoutingTree at = build_atree_general(net).tree;
            const RoutingTree st = build_one_steiner(net).tree;
            const double arc = measure_delay(at, tech, SimMethod::two_pole,
                                             bench::kPaperThreshold, false)
                                   .mean;
            const double arlc = measure_delay(at, tech, SimMethod::two_pole,
                                              bench::kPaperThreshold, true)
                                    .mean;
            const double src = measure_delay(st, tech, SimMethod::two_pole,
                                             bench::kPaperThreshold, false)
                                   .mean;
            const double srlc = measure_delay(st, tech, SimMethod::two_pole,
                                              bench::kPaperThreshold, true)
                                    .mean;
            a_rc += arc;
            a_rlc += arlc;
            s_rc += src;
            s_rlc += srlc;
            wins_rc += arc < src;
            wins_rlc += arlc < srlc;
        }
        const double n = 50.0;
        t.add_row({std::to_string(sinks), fmt_ns(a_rc / n), fmt_ns(a_rlc / n),
                   fmt_ns(s_rc / n), fmt_ns(s_rlc / n),
                   std::to_string(wins_rc) + "/50", std::to_string(wins_rlc) + "/50"});
    }
    t.print(std::cout);

    // Cross-check two-pole against the RLC transient on a few nets.
    std::cout << "\nRLC two-pole vs backward-Euler transient (8-sink nets):\n";
    TextTable v({"net", "two-pole mean (ns)", "transient mean (ns)", "ratio"});
    const auto nets = random_nets(8899, 5, kMcmGrid, 8);
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const RoutingTree at = build_atree_general(nets[i]).tree;
        const double tp = measure_delay(at, tech, SimMethod::two_pole,
                                        bench::kPaperThreshold, true)
                              .mean;
        const double tr = measure_delay(at, tech, SimMethod::transient,
                                        bench::kPaperThreshold, true)
                              .mean;
        v.add_row({std::to_string(i), fmt_ns(tp), fmt_ns(tr), fmt_fixed(tp / tr, 3)});
    }
    v.print(std::cout);
    std::cout << "\nExpected: inductance adds a time-of-flight correction of a "
                 "few percent at MCM dimensions; every RC-based ranking in "
                 "Tables 5/8 is unchanged, supporting the paper's choice of an "
                 "RC model (its Section 6 defers RLC optimization).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
