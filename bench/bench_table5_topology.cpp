// Table 5: A-tree vs batched 1-Steiner vs BRBC-0.5 / BRBC-1.0 under the MCM
// technology -- the three MDRT cost terms plus average simulated delay
// (two-pole, 90% threshold), for 100 random nets of 4, 8 and 16 sinks on the
// 100mm x 100mm region.
//
// Two net populations are reported:
//  * interior sources (primary) -- reproduces the paper's absolute delays
//    (A-tree 8.07/10.49/14.92 ns) and its delay rankings;
//  * corner sources (sensitivity) -- reproduces the paper's *wirelength*
//    ratios (A-tree within ~1-13% of 1-Steiner), which an interior source
//    cannot achieve because each quadrant routes independently.
// See EXPERIMENTS.md for the discussion.
#include <functional>
#include <string>

#include "atree/generalized.h"
#include "baseline/brbc.h"
#include "baseline/one_steiner.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

struct Row {
    double length = 0;
    double sum_pl_sinks = 0;
    double sum_pl_nodes = 0;
    double delay = 0;
    double runtime = 0;
};

using Router = std::function<RoutingTree(const Net&)>;

const std::vector<std::pair<std::string, Router>>& routers()
{
    static const std::vector<std::pair<std::string, Router>> algos = {
        {"A-tree", [](const Net& n) { return build_atree_general(n).tree; }},
        {"1-Steiner", [](const Net& n) { return build_one_steiner(n).tree; }},
        {"BRBC-0.5", [](const Net& n) { return build_brbc(n, 0.5); }},
        {"BRBC-1.0", [](const Net& n) { return build_brbc(n, 1.0); }},
        {"BRBC-1.0m",
         [](const Net& n) { return build_brbc(n, 1.0, BrbcRadius::mst_path); }},
    };
    return algos;
}

void run_population(const std::string& label,
                    const std::function<std::vector<Net>(int)>& make_nets)
{
    const Technology tech = mcm_technology();
    std::cout << "\n################ " << label << " ################\n";
    for (const int sinks : {4, 8, 16}) {
        std::cout << "\n--- " << sinks << " sinks, " << bench::kNetsPerConfig
                  << " nets ---\n";
        const auto nets = make_nets(sinks);
        std::vector<Row> rows(routers().size());
        for (const Net& net : nets) {
            for (std::size_t a = 0; a < routers().size(); ++a) {
                RoutingTree tree(Point{0, 0});
                rows[a].runtime +=
                    bench::time_seconds([&] { tree = routers()[a].second(net); });
                rows[a].length += static_cast<double>(total_length(tree));
                rows[a].sum_pl_sinks +=
                    static_cast<double>(sum_sink_path_lengths(tree));
                rows[a].sum_pl_nodes +=
                    static_cast<double>(sum_all_node_path_lengths(tree));
                rows[a].delay += measure_delay(tree, tech, SimMethod::two_pole,
                                               bench::kPaperThreshold)
                                     .mean;
            }
        }
        for (Row& r : rows) {
            r.length /= bench::kNetsPerConfig;
            r.sum_pl_sinks /= bench::kNetsPerConfig;
            r.sum_pl_nodes /= bench::kNetsPerConfig;
            r.delay /= bench::kNetsPerConfig;
        }

        std::vector<std::string> headers{"weight function"};
        for (const auto& [name, fn] : routers()) headers.push_back(name);
        TextTable t(std::move(headers));
        const auto metric_row = [&](const std::string& name, double Row::*field,
                                    bool sci) {
            std::vector<std::string> cells{name};
            for (std::size_t a = 0; a < rows.size(); ++a) {
                const double v = rows[a].*field;
                std::string cell = sci ? fmt_sci(v, 3) : fmt_fixed(v, 1);
                if (a > 0) cell += " (" + fmt_pct_delta(rows[0].*field, v) + ")";
                cells.push_back(cell);
            }
            t.add_row(cells);
        };
        metric_row("length(T)", &Row::length, true);
        metric_row("sum_k in N pl_k(T)", &Row::sum_pl_sinks, true);
        metric_row("sum_k in T pl_k(T)", &Row::sum_pl_nodes, true);
        {
            std::vector<std::string> cells{"delay (ns, two-pole 90%)"};
            for (std::size_t a = 0; a < rows.size(); ++a) {
                std::string cell = fmt_ns(rows[a].delay);
                if (a > 0)
                    cell += " (" + fmt_pct_delta(rows[0].delay, rows[a].delay) + ")";
                cells.push_back(cell);
            }
            t.add_row(cells);
        }
        {
            std::vector<std::string> cells{"router runtime (s/net)"};
            for (const Row& r : rows)
                cells.push_back(fmt_sci(r.runtime / bench::kNetsPerConfig, 2));
            t.add_row(cells);
        }
        t.print(std::cout);
    }
}

void run()
{
    bench::banner("Table 5 -- interconnect topology optimization (MCM)",
                  "Cong/Leung/Zhou 1993, Table 5");
    run_population("interior sources (primary)", [](int sinks) {
        return random_nets(1993 + static_cast<std::uint64_t>(sinks),
                           bench::kNetsPerConfig, kMcmGrid, sinks);
    });
    run_population("corner sources (wirelength-ratio sensitivity)", [](int sinks) {
        return random_corner_nets(4993 + static_cast<std::uint64_t>(sinks),
                                  bench::kNetsPerConfig, kMcmGrid, sinks);
    });
    std::cout << "\nPaper's shape: 1-Steiner wins on wirelength; the A-tree wins "
                 "on both path-length terms and beats 1-Steiner on delay, with "
                 "the margin growing with net size.  Our BRBC inserts more "
                 "shortcuts than the paper's reported lengths imply (see the "
                 "BRBC-1.0m variant and EXPERIMENTS.md), which under a pure-RC "
                 "two-pole model makes it delay-competitive.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
