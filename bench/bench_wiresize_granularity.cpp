// Wiresizing granularity study (Section 2.2's "artificial non-trivial
// nodes" generalization): allow the width to change *inside* straight
// segments by subdividing them, and measure how much extra delay the
// segment-based formulation leaves on the table.  100 16-sink MCM A-trees,
// r = 4 widths, GREWSA-OWSA at every granularity.
#include <vector>

#include "atree/generalized.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/transform.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Wiresizing granularity (artificial non-trivial nodes)",
                  "Cong/Leung/Zhou 1993, Section 2.2 generalization");
    const Technology tech = mcm_technology();
    const WidthSet widths = WidthSet::uniform_steps(4);
    const auto nets = random_nets(2006, bench::kNetsPerConfig, kMcmGrid, 16);

    std::vector<RoutingTree> trees;
    trees.reserve(nets.size());
    for (const Net& net : nets) trees.push_back(build_atree_general(net).tree);

    TextTable t({"max segment piece (grids)", "avg segments", "avg delay (ns)",
                 "gain vs whole-segment", "avg runtime (s/net)"});
    double base_delay = 0.0;
    for (const Length piece : {Length{1 << 20}, Length{2000}, Length{1000},
                               Length{500}, Length{250}}) {
        double delay = 0.0, seg_count = 0.0, runtime = 0.0;
        for (const RoutingTree& tree : trees) {
            const RoutingTree fine = subdivide_edges(tree, piece);
            const SegmentDecomposition segs(fine);
            seg_count += static_cast<double>(segs.count());
            const WiresizeContext ctx(segs, tech, widths);
            CombinedResult res;
            runtime += bench::time_seconds([&] { res = grewsa_owsa(ctx); });
            delay += res.delay;
        }
        const double n = static_cast<double>(trees.size());
        if (base_delay == 0.0) base_delay = delay;
        t.add_row({piece > 100000 ? "whole segments" : std::to_string(piece),
                   fmt_fixed(seg_count / n, 1), fmt_ns(delay / n, 4),
                   fmt_pct_delta(base_delay, delay), fmt_sci(runtime / n, 2)});
    }
    t.print(std::cout);
    std::cout << "\nExpected: finer pieces buy a small additional delay "
                 "reduction with rapidly growing cost -- supporting the "
                 "paper's segment-based formulation as the practical choice.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
