// Figure 3: an instance where the three MDRT sub-objectives have three
// different optimal topologies.  We search small first-quadrant nets for an
// instance where the optimal Steiner tree (OST), the minimum-length
// shortest-path tree (SPT, which for first-quadrant nets coincides with the
// optimal rectilinear Steiner arborescence) and the quadratic minimum
// Steiner tree (QMST, the arborescence minimizing Σ_nodes pl_k) are pairwise
// different, then print the 3x3 cost matrix exactly like the figure.
#include <random>

#include "atree/exact_rsa.h"
#include "baseline/exact_steiner.h"
#include "bench_common.h"
#include "report/table.h"
#include "rtree/io.h"
#include "rtree/metrics.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Figure 3 -- OST, SPT and QMST optima differ",
                  "Cong/Leung/Zhou 1993, Figure 3");

    std::mt19937_64 rng(3);
    std::uniform_int_distribution<Coord> c(0, 6);
    for (int attempt = 0; attempt < 20000; ++attempt) {
        Net net;
        net.source = Point{0, 0};
        for (int i = 0; i < 4; ++i) net.sinks.push_back(Point{c(rng), c(rng)});

        const auto ost = exact_steiner(net);
        const auto spt = exact_rsa(net, RsaCost::wirelength);
        const auto qmst = exact_rsa(net, RsaCost::qmst);

        const Length len_ost = total_length(ost.tree);
        const Length len_spt = total_length(spt.tree);
        const Length len_qmst = total_length(qmst.tree);
        const Length pl_ost = sum_sink_path_lengths(ost.tree);
        const Length pl_spt = sum_sink_path_lengths(spt.tree);
        const Length q_ost = sum_all_node_path_lengths(ost.tree);
        const Length q_spt = sum_all_node_path_lengths(spt.tree);
        const Length q_qmst = sum_all_node_path_lengths(qmst.tree);

        // Require genuine three-way separation like the figure:
        // OST strictly shortest, SPT strictly better on Σ sink pl,
        // QMST strictly better on Σ node pl than both others.
        if (!(len_ost < len_spt && len_ost < len_qmst)) continue;
        if (!(pl_spt < pl_ost)) continue;
        if (!(q_qmst < q_ost && q_qmst < q_spt)) continue;

        std::cout << "\nnet: source (0,0), sinks:";
        for (const Point s : net.sinks) std::cout << " (" << s.x << ',' << s.y << ')';
        std::cout << "\n\nOST topology:\n" << to_ascii(ost.tree)
                  << "\nSPT topology:\n" << to_ascii(spt.tree)
                  << "\nQMST topology:\n" << to_ascii(qmst.tree) << '\n';

        TextTable t({"cost function", "OST", "SPT", "QMST"});
        const auto star = [](Length v, bool opt) {
            return std::to_string(v) + (opt ? " (optimal)" : "");
        };
        t.add_row({"total wirelength  t1", star(len_ost, true), star(len_spt, false),
                   star(len_qmst, false)});
        t.add_row({"sum sink pl       t2", star(pl_ost, false), star(pl_spt, true),
                   star(sum_sink_path_lengths(qmst.tree),
                        sum_sink_path_lengths(qmst.tree) == pl_spt)});
        t.add_row({"sum node pl       t3", star(q_ost, false), star(q_spt, false),
                   star(q_qmst, true)});
        t.print(std::cout);
        std::cout << "\nPaper's shape (Figure 3): the three optima are realized "
                     "by three distinct trees; the QMST sits between the OST "
                     "(min wire) and SPT (min paths) extremes.\n";
        return;
    }
    std::cout << "no separating instance found (unexpected)\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
