// Figure 4: two trees with the same T topology but different wire widths.
// Tree 1 is uniform-width; Tree 2 doubles the stem width.  The wider stem
// lowers the delay at both sinks -- the observation motivating the paper's
// wiresizing formulation.
#include "bench_common.h"
#include "report/table.h"
#include "rtree/io.h"
#include "rtree/segments.h"
#include "sim/delay_measure.h"
#include "sim/transient.h"
#include "tech/technology.h"
#include "wiresize/delay_eval.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Figure 4 -- same topology, different wire widths",
                  "Cong/Leung/Zhou 1993, Figure 4");
    const Technology tech = mcm_technology();

    // T-tree on the MCM grid: 2000-grid stem, two 1000-grid branches.
    RoutingTree t(Point{1000, 0});
    const NodeId mid = t.add_child(t.root(), Point{1000, 2000});
    t.mark_sink(t.add_child(mid, Point{0, 2000}));
    t.mark_sink(t.add_child(mid, Point{2000, 2000}));
    const SegmentDecomposition segs(t);
    const WidthSet widths({1.0, 2.0});

    const std::size_t stem = static_cast<std::size_t>(segs.roots()[0]);
    Assignment uniform(segs.count(), 0);
    Assignment wide_stem(segs.count(), 0);
    wide_stem[stem] = 1;

    const WiresizeContext ctx(segs, tech, widths);
    const auto d1 = measure_delay_wiresized(segs, tech, widths, uniform,
                                            SimMethod::two_pole,
                                            bench::kPaperThreshold);
    const auto d2 = measure_delay_wiresized(segs, tech, widths, wide_stem,
                                            SimMethod::two_pole,
                                            bench::kPaperThreshold);
    const auto tr1 = measure_delay_wiresized(segs, tech, widths, uniform,
                                             SimMethod::transient,
                                             bench::kPaperThreshold);
    const auto tr2 = measure_delay_wiresized(segs, tech, widths, wide_stem,
                                             SimMethod::transient,
                                             bench::kPaperThreshold);

    std::cout << "\nT-tree (stem 2000 grids, branches 1000 grids each):\n";
    TextTable tab({"metric", "Tree 1 (uniform W1)", "Tree 2 (stem 2*W1)"});
    tab.add_row({"RPH bound (ns)", fmt_ns(ctx.delay(uniform)),
                 fmt_ns(ctx.delay(wide_stem))});
    tab.add_row({"avg sink delay, two-pole 90% (ns)", fmt_ns(d1.mean), fmt_ns(d2.mean)});
    tab.add_row({"avg sink delay, transient 90% (ns)", fmt_ns(tr1.mean), fmt_ns(tr2.mean)});
    tab.print(std::cout);

    // Sampled responses at the left sink.
    const RcTree rc1 = RcTree::from_wiresized_tree(segs, tech, widths, uniform);
    const RcTree rc2 = RcTree::from_wiresized_tree(segs, tech, widths, wide_stem);
    const auto w1 = transient_waveforms(rc1, {rc1.sink_nodes()[0]}, 0.98);
    const auto w2 = transient_waveforms(rc2, {rc2.sink_nodes()[0]}, 0.98);
    std::cout << "\nStep response at a sink (V vs ns):\n";
    TextTable wt({"t (ns)", "Tree 1 (uniform)", "Tree 2 (wide stem)"});
    const double t_end = std::max(w1[0].time.back(), w2[0].time.back());
    for (int s = 1; s <= 12; ++s) {
        const double ts = t_end * s / 12.0;
        const auto sample = [&](const Waveform& w) {
            std::size_t k = 0;
            while (k + 1 < w.time.size() && w.time[k] < ts) ++k;
            return w.value[k];
        };
        wt.add_row({fmt_ns(ts), fmt_fixed(sample(w1[0]), 3),
                    fmt_fixed(sample(w2[0]), 3)});
    }
    wt.print(std::cout);
    std::cout << "\nPaper's shape: Tree 2 (wider stem) rises faster and has the "
                 "smaller delay despite its larger wire capacitance.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
