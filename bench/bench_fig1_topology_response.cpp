// Figure 1: circuit responses of two interconnect topologies for the same
// net -- an optimal Steiner tree vs a delay-optimized (A-tree) topology.
// The delay-optimized tree has LARGER total wirelength yet SMALLER delay,
// the paper's motivating observation for the distributed RC regime.
//
// We search small MCM nets for a clean instance, print both trees, their
// MDRT cost terms, the two-pole and transient sink delays, and a sampled
// step-response table for the most-separated sink.
#include <random>

#include "atree/atree.h"
#include "baseline/exact_steiner.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "rtree/io.h"
#include "rtree/metrics.h"
#include "sim/delay_measure.h"
#include "sim/transient.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

void run()
{
    bench::banner("Figure 1 -- OST vs delay-optimized topology responses",
                  "Cong/Leung/Zhou 1993, Figure 1");
    const Technology tech = mcm_technology();

    // Find an instance where the A-tree is strictly longer than the optimal
    // Steiner tree yet strictly faster.
    std::mt19937_64 rng(1);
    for (int attempt = 0; attempt < 500; ++attempt) {
        Net net;
        net.source = Point{0, 0};
        std::uniform_int_distribution<Coord> c(0, kMcmGrid / 2);
        for (int i = 0; i < 5; ++i) net.sinks.push_back(Point{c(rng), c(rng)});

        const RoutingTree ost = exact_steiner(net).tree;
        const RoutingTree fast = build_atree(net).tree;
        const auto d_ost =
            measure_delay(ost, tech, SimMethod::two_pole, bench::kPaperThreshold);
        const auto d_fast =
            measure_delay(fast, tech, SimMethod::two_pole, bench::kPaperThreshold);
        if (total_length(fast) <= total_length(ost) || d_fast.mean >= d_ost.mean) {
            net.sinks.clear();
            continue;
        }

        std::cout << "\nnet: source (0,0), sinks:";
        for (const Point s : net.sinks) std::cout << " (" << s.x << ',' << s.y << ')';
        std::cout << "\n\nTree 1 (optimal Steiner tree):   " << describe(ost)
                  << "\nTree 2 (A-tree, delay optimized): " << describe(fast) << "\n\n";

        TextTable t({"metric", "Tree 1 (OST)", "Tree 2 (A-tree)"});
        t.add_row({"total wirelength", std::to_string(total_length(ost)),
                   std::to_string(total_length(fast))});
        t.add_row({"sum sink pathlengths", std::to_string(sum_sink_path_lengths(ost)),
                   std::to_string(sum_sink_path_lengths(fast))});
        t.add_row({"avg delay two-pole 90% (ns)", fmt_ns(d_ost.mean),
                   fmt_ns(d_fast.mean)});
        const auto tr_ost = measure_delay(ost, tech, SimMethod::transient,
                                          bench::kPaperThreshold);
        const auto tr_fast = measure_delay(fast, tech, SimMethod::transient,
                                           bench::kPaperThreshold);
        t.add_row({"avg delay transient 90% (ns)", fmt_ns(tr_ost.mean),
                   fmt_ns(tr_fast.mean)});
        t.add_row({"max delay transient 90% (ns)", fmt_ns(tr_ost.max),
                   fmt_ns(tr_fast.max)});
        t.print(std::cout);

        // Step responses at the slowest sink of the OST.
        std::size_t worst = 0;
        for (std::size_t i = 0; i < tr_ost.sink_delays.size(); ++i)
            if (tr_ost.sink_delays[i] > tr_ost.sink_delays[worst]) worst = i;
        const RcTree rc_ost = RcTree::from_routing_tree(ost, tech);
        const RcTree rc_fast = RcTree::from_routing_tree(fast, tech);
        const auto wf_ost =
            transient_waveforms(rc_ost, {rc_ost.sink_nodes()[worst]}, 0.98);
        const auto wf_fast =
            transient_waveforms(rc_fast, {rc_fast.sink_nodes()[worst]}, 0.98);

        std::cout << "\nStep response at the slowest OST sink (V vs ns):\n";
        TextTable wt({"t (ns)", "Tree 1 (OST)", "Tree 2 (A-tree)"});
        const std::size_t samples = 12;
        const double t_end = std::max(wf_ost[0].time.back(), wf_fast[0].time.back());
        for (std::size_t s = 1; s <= samples; ++s) {
            const double ts = t_end * static_cast<double>(s) / samples;
            const auto sample = [&](const Waveform& w) {
                std::size_t k = 0;
                while (k + 1 < w.time.size() && w.time[k] < ts) ++k;
                return w.value[k];
            };
            wt.add_row({fmt_ns(ts), fmt_fixed(sample(wf_ost[0]), 3),
                        fmt_fixed(sample(wf_fast[0]), 3)});
        }
        wt.print(std::cout);
        std::cout << "\nPaper's shape: Tree 2 has larger wirelength but its "
                     "response crosses the threshold earlier (smaller delay), because the "
                     "distributed wire resistance penalizes long source-sink "
                     "paths more than total capacitance.\n";
        return;
    }
    std::cout << "no separating instance found (unexpected)\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
