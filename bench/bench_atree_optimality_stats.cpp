// Section 3.3/3.4 statistics: how often the A-tree algorithm's moves are
// safe (hence optimal), how often whole constructions are all-safe (hence
// optimal under both the OST and QMST costs), and how far from optimal the
// heuristic trees are -- measured both against the online ERROR lower bound
// and against the exact DP optimum.
//
// Paper's numbers: first-quadrant -- 96% safe moves, 65% all-safe trees,
// <= 3% average gap; generalized (all quadrants) -- 94%, 45%, <= 4%.
#include <random>

#include "atree/atree.h"
#include "atree/exact_rsa.h"
#include "atree/generalized.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"

namespace cong93 {
namespace {

struct Stats {
    long safe = 0;
    long heuristic = 0;
    int all_safe_trees = 0;
    int nets = 0;
    double gap_vs_lb = 0.0;     // (cost - lower_bound) / cost
    double gap_vs_exact = 0.0;  // (cost - exact) / exact, when exact is known
    int exact_known = 0;
};

void accumulate(Stats& s, const AtreeResult& r)
{
    s.safe += r.safe_moves;
    s.heuristic += r.heuristic_moves;
    s.all_safe_trees += r.all_safe() ? 1 : 0;
    ++s.nets;
    if (r.cost > 0)
        s.gap_vs_lb += static_cast<double>(r.cost - r.lower_bound()) /
                       static_cast<double>(r.cost);
}

void print(const char* name, const Stats& s)
{
    TextTable t({"statistic", name});
    const double moves = static_cast<double>(s.safe + s.heuristic);
    t.add_row({"nets", std::to_string(s.nets)});
    t.add_row({"safe moves", fmt_fixed(100.0 * s.safe / moves, 1) + "%"});
    t.add_row({"all-safe (provably optimal) trees",
               fmt_fixed(100.0 * s.all_safe_trees / s.nets, 1) + "%"});
    t.add_row({"avg gap vs online lower bound",
               fmt_fixed(100.0 * s.gap_vs_lb / s.nets, 2) + "%"});
    if (s.exact_known > 0)
        t.add_row({"avg gap vs exact optimum",
                   fmt_fixed(100.0 * s.gap_vs_exact / s.exact_known, 2) + "%"});
    t.print(std::cout);
}

void run()
{
    bench::banner("A-tree optimality statistics",
                  "Cong/Leung/Zhou 1993, Sections 3.3-3.4");

    for (const int sinks : {4, 8}) {
        // First-quadrant version (exact optimum available for comparison).
        Stats fq;
        std::mt19937_64 rng(static_cast<std::uint64_t>(333 + sinks));
        for (int i = 0; i < bench::kNetsPerConfig; ++i) {
            std::uniform_int_distribution<Coord> c(0, kMcmGrid);
            Net net;
            net.source = Point{0, 0};
            for (int k = 0; k < sinks; ++k) net.sinks.push_back(Point{c(rng), c(rng)});
            const AtreeResult r = build_atree(net);
            accumulate(fq, r);
            const Length opt = exact_rsa_cost(net);
            fq.gap_vs_exact += static_cast<double>(r.cost - opt) /
                               static_cast<double>(opt);
            ++fq.exact_known;
        }
        std::cout << "\nfirst-quadrant nets, " << sinks << " sinks:\n";
        print("first-quadrant A-tree", fq);

        // Generalized version (all quadrants).
        Stats gen;
        const auto nets =
            random_nets(static_cast<std::uint64_t>(777 + sinks),
                        bench::kNetsPerConfig, kMcmGrid, sinks);
        for (const Net& net : nets) accumulate(gen, build_atree_general(net));
        std::cout << "\ngeneral nets (all quadrants), " << sinks << " sinks:\n";
        print("generalized A-tree", gen);
    }
    std::cout << "\nPaper's shape: ~96% (first-quadrant) / ~94% (general) of "
                 "moves are safe, a solid majority / near-half of trees are "
                 "all-safe and provably optimal, and the average optimality gap "
                 "is a few percent.\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
