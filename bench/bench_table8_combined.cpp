// Table 8: average simulated delay of the combined A-tree + Wiresizing flow
// against the batched 1-Steiner and BRBC baselines (uniform minimum width),
// for 4/8/16-sink MCM nets.
#include <vector>

#include "atree/generalized.h"
#include "baseline/brbc.h"
#include "baseline/one_steiner.h"
#include "batch/batch.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

namespace cong93 {
namespace {

/// Width count for the wiresized A-tree (the paper's Table 6 set with r=6
/// gives its largest gain; Table 8 does not state r, so we report the
/// mid-range r=4 and the shape holds for any r >= 2).
constexpr int kWidths = 4;

void run()
{
    bench::banner("Table 8 -- A-tree + wiresizing vs baselines (MCM)",
                  "Cong/Leung/Zhou 1993, Table 8");
    const Technology tech = mcm_technology();

    TextTable t({"# sinks", "A-tree+Wiresizing (ns)", "1-Steiner (ns)",
                 "BRBC-0.5 (ns)", "BRBC-1.0 (ns)"});
    for (const int sinks : {4, 8, 16}) {
        const auto nets =
            random_nets(1993 + sinks, bench::kNetsPerConfig, kMcmGrid, sinks);
        struct NetResult {
            double sized = 0, steiner = 0, brbc05 = 0, brbc10 = 0;
        };
        // Per-net flows are independent: fan out over the batch pool and
        // reduce serially in index order (byte-identical to a serial run).
        const std::vector<NetResult> per_net =
            batch_map<NetResult>(nets.size(), [&](std::size_t ni) {
                const Net& net = nets[ni];
                const RoutingTree atree = build_atree_general(net).tree;
                const SegmentDecomposition segs(atree);
                const WiresizeContext ctx(segs, tech,
                                          WidthSet::uniform_steps(kWidths));
                const CombinedResult sized = grewsa_owsa(ctx);
                NetResult res;
                res.sized = measure_delay_wiresized(segs, tech, ctx.widths(),
                                                    sized.assignment,
                                                    SimMethod::two_pole,
                                                    bench::kPaperThreshold)
                                .mean;
                res.steiner =
                    measure_delay(build_one_steiner(net).tree, tech,
                                  SimMethod::two_pole, bench::kPaperThreshold)
                        .mean;
                res.brbc05 =
                    measure_delay(build_brbc(net, 0.5), tech, SimMethod::two_pole,
                                  bench::kPaperThreshold)
                        .mean;
                res.brbc10 =
                    measure_delay(build_brbc(net, 1.0), tech, SimMethod::two_pole,
                                  bench::kPaperThreshold)
                        .mean;
                return res;
            });
        double d_sized = 0, d_steiner = 0, d_brbc05 = 0, d_brbc10 = 0;
        for (const NetResult& res : per_net) {
            d_sized += res.sized;
            d_steiner += res.steiner;
            d_brbc05 += res.brbc05;
            d_brbc10 += res.brbc10;
        }
        const double n = bench::kNetsPerConfig;
        std::vector<std::string> row{std::to_string(sinks), fmt_ns(d_sized / n)};
        for (const double d : {d_steiner, d_brbc05, d_brbc10})
            row.push_back(fmt_ns(d / n) + " (" + fmt_pct_delta(d_sized, d) + ")");
        t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper's shape: the wiresized A-tree dominates every "
                 "baseline, and the margin grows with net size (paper: +73% to "
                 "+192% for 1-Steiner).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
