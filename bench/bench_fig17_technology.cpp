// Figure 17 (+ Table 9): delay improvement of the wiresized A-tree over the
// batched 1-Steiner tree as a function of the IC technology (2.0/1.5/1.2/0.5
// um CMOS) and driver transistor scaling (4/6/8/10x minimum width), on 100
// 8-sink nets uniform in a 0.5mm x 0.5mm region.
//
// The paper's claims: (i) within a technology, improvement grows as the
// driver is scaled up (resistance ratio drops); (ii) the advanced 0.5um
// technology shows consistent A-tree wins while the old 2.0um technology
// favours the Steiner tree; (iii) the trend follows the resistance ratio.
#include <vector>

#include "atree/generalized.h"
#include "baseline/one_steiner.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"
#include "wiresize/combined.h"

namespace cong93 {
namespace {

constexpr int kWidths = 3;

void run()
{
    bench::banner("Figure 17 -- improvement vs technology and transistor size",
                  "Cong/Leung/Zhou 1993, Figure 17 + Table 9");

    // Pre-build topologies once per net (they are technology independent).
    const auto nets = random_nets(1954, bench::kNetsPerConfig, kIcGrid, 8);
    std::vector<RoutingTree> atrees, steiners;
    atrees.reserve(nets.size());
    steiners.reserve(nets.size());
    for (const Net& net : nets) {
        atrees.push_back(build_atree_general(net).tree);
        steiners.push_back(build_one_steiner(net).tree);
    }

    TextTable t({"technology", "Rd/R0 (1e6 um)", "driver x4", "driver x6",
                 "driver x8", "driver x10"});
    for (const Technology& base : table9_technologies()) {
        std::vector<std::string> row{base.name,
                                     fmt_fixed(base.resistance_ratio_um() / 1e6, 3)};
        for (const double scale : {4.0, 6.0, 8.0, 10.0}) {
            const Technology tech = base.with_driver_scale(scale);
            double d_atree = 0, d_steiner = 0;
            for (std::size_t i = 0; i < nets.size(); ++i) {
                const SegmentDecomposition segs(atrees[i]);
                const WiresizeContext ctx(segs, tech,
                                          WidthSet::uniform_steps(kWidths));
                const CombinedResult sized = grewsa_owsa(ctx);
                d_atree += measure_delay_wiresized(segs, tech, ctx.widths(),
                                                   sized.assignment,
                                                   SimMethod::two_pole,
                                                   bench::kPaperThreshold)
                               .mean;
                d_steiner += measure_delay(steiners[i], tech, SimMethod::two_pole,
                                           bench::kPaperThreshold)
                                 .mean;
            }
            // Improvement of the wiresized A-tree over batched 1-Steiner.
            const double impr = (d_steiner - d_atree) / d_steiner * 100.0;
            row.push_back(fmt_fixed(impr, 1) + "%");
        }
        t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper's shape: improvement grows left-to-right within each "
                 "row (bigger drivers => smaller resistance ratio) and is "
                 "largest for the 0.5um technology; for 2.0um CMOS the A-tree "
                 "advantage is smallest (the paper reports the plain A-tree "
                 "can even lose there).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
