// Algorithm scaling micro-benchmarks (google-benchmark): A-tree construction
// vs sink count, OWSA vs width count (the O(n^{r-1}) of Theorem 5),
// GREWSA vs sink count, and the two simulators vs tree size.
#include <benchmark/benchmark.h>

#include "atree/generalized.h"
#include "netgen/netgen.h"
#include "sim/delay_measure.h"
#include "sim/two_pole.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"

namespace cong93 {
namespace {

void BM_AtreeBuild(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const auto nets = random_nets(1, 16, kMcmGrid, sinks);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_atree_general(nets[i % nets.size()]));
        ++i;
    }
}
BENCHMARK(BM_AtreeBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Owsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(owsa(ctx));
}
BENCHMARK(BM_Owsa)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_Grewsa(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(3, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_from_min(ctx));
}
BENCHMARK(BM_Grewsa)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GrewsaOwsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_owsa(ctx));
}
BENCHMARK(BM_GrewsaOwsa)->Arg(2)->Arg(4)->Arg(6);

void BM_TwoPoleSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const RcTree rc = RcTree::from_routing_tree(tree, tech);
    for (auto _ : state) benchmark::DoNotOptimize(two_pole_sink_delays(rc));
}
BENCHMARK(BM_TwoPoleSim)->Arg(8)->Arg(32);

void BM_TransientSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    for (auto _ : state)
        benchmark::DoNotOptimize(measure_delay(tree, tech, SimMethod::transient));
}
BENCHMARK(BM_TransientSim)->Arg(8)->Arg(32);

}  // namespace
}  // namespace cong93

BENCHMARK_MAIN();
