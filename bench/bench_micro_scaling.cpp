// Algorithm scaling micro-benchmarks (google-benchmark): A-tree construction
// vs sink count, OWSA vs width count (the O(n^{r-1}) of Theorem 5),
// GREWSA vs sink count (incremental engine vs the O(n^2)-per-sweep
// reference), batch throughput, and the two simulators vs tree size.
//
// After the google-benchmark suite runs, a deterministic scaling study is
// written to BENCH_wiresize.json (net size vs wall-clock for the reference,
// incremental and parallel-batch GREWSA paths) so the perf trajectory is
// machine-readable across PRs.
//
//   --json=PATH   output path for the scaling study (default BENCH_wiresize.json)
//   --json-only   skip the google-benchmark suite, only write the study
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "atree/generalized.h"
#include "batch/batch.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "sim/two_pole.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"

namespace cong93 {
namespace {

void BM_AtreeBuild(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const auto nets = random_nets(1, 16, kMcmGrid, sinks);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_atree_general(nets[i % nets.size()]));
        ++i;
    }
}
BENCHMARK(BM_AtreeBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Owsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(owsa(ctx));
}
BENCHMARK(BM_Owsa)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_Grewsa(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(3, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_from_min(ctx));
}
BENCHMARK(BM_Grewsa)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_GrewsaReference(benchmark::State& state)
{
    // The seed evaluation path (full theta/phi/psi re-derivation per
    // refinement): the baseline the incremental engine is measured against.
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(3, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            grewsa_reference(ctx, min_assignment(ctx.segment_count())));
}
BENCHMARK(BM_GrewsaReference)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_GrewsaOwsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_owsa(ctx));
}
BENCHMARK(BM_GrewsaOwsa)->Arg(2)->Arg(4)->Arg(6);

void BM_BatchGrewsaOwsa(benchmark::State& state)
{
    // Whole-batch throughput of the thread-pool driver (one grewsa_owsa per
    // net); threads = CONG93_THREADS or hardware concurrency.
    const int nets_n = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const auto nets = random_nets(5, nets_n, kMcmGrid, 16);
    std::vector<RoutingTree> storage;
    std::vector<SegmentDecomposition> trees;
    storage.reserve(nets.size());
    trees.reserve(nets.size());
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
    }
    for (auto _ : state) {
        const auto delays = batch_map<double>(trees.size(), [&](std::size_t i) {
            const WiresizeContext ctx(trees[i], tech, WidthSet::uniform_steps(4));
            return grewsa_owsa(ctx).delay;
        });
        benchmark::DoNotOptimize(delays);
    }
}
BENCHMARK(BM_BatchGrewsaOwsa)->Arg(8)->Arg(32);

void BM_TwoPoleSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const RcTree rc = RcTree::from_routing_tree(tree, tech);
    for (auto _ : state) benchmark::DoNotOptimize(two_pole_sink_delays(rc));
}
BENCHMARK(BM_TwoPoleSim)->Arg(8)->Arg(32);

void BM_TransientSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    for (auto _ : state)
        benchmark::DoNotOptimize(measure_delay(tree, tech, SimMethod::transient));
}
BENCHMARK(BM_TransientSim)->Arg(8)->Arg(32);

// ---------------------------------------------------------------------------
// BENCH_wiresize.json scaling study
// ---------------------------------------------------------------------------

/// Best-of-k wall-clock of fn(), with k sized so the total stays ~50ms.
template <typename Fn>
double time_best(Fn&& fn)
{
    const double warmup = bench::time_seconds(fn);
    const int reps = std::clamp(static_cast<int>(0.05 / std::max(warmup, 1e-9)), 2, 15);
    double best = warmup;
    for (int i = 0; i < reps; ++i) best = std::min(best, bench::time_seconds(fn));
    return best;
}

struct ScalingRow {
    int sinks = 0;
    std::size_t segments = 0;
    double reference_s = 0.0;
    double incremental_s = 0.0;
    bool fixpoint_identical = false;
    double speedup() const
    {
        return incremental_s > 0.0 ? reference_s / incremental_s : 0.0;
    }
};

bool write_scaling_json(const std::string& path)
{
    constexpr int kR = 4;
    const Technology tech = mcm_technology();

    std::vector<ScalingRow> rows;
    for (const int sinks : {12, 25, 50, 100, 200}) {
        const Net net = random_nets(1993, 1, kMcmGrid, sinks)[0];
        const RoutingTree tree = build_atree_general(net).tree;
        const SegmentDecomposition segs(tree);
        const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(kR));

        ScalingRow row;
        row.sinks = sinks;
        row.segments = segs.count();
        GrewsaResult ref, inc;
        row.reference_s = time_best(
            [&] { ref = grewsa_reference(ctx, min_assignment(segs.count())); });
        row.incremental_s = time_best([&] { inc = grewsa_from_min(ctx); });
        row.fixpoint_identical =
            ref.assignment == inc.assignment && ref.delay == inc.delay;
        rows.push_back(row);
        std::cout << "grewsa scaling: " << row.segments << " segments  reference "
                  << fmt_sci(row.reference_s, 2) << "s  incremental "
                  << fmt_sci(row.incremental_s, 2) << "s  speedup "
                  << fmt_fixed(row.speedup(), 1) << "x  identical "
                  << (row.fixpoint_identical ? "yes" : "NO") << '\n';
    }

    // Batch throughput: the full grewsa_owsa flow over a fixed batch,
    // serial vs thread pool, verifying bit-identical results.
    constexpr int kBatchNets = 32;
    constexpr int kBatchSinks = 16;
    const auto nets = random_nets(7, kBatchNets, kMcmGrid, kBatchSinks);
    std::vector<RoutingTree> storage;
    std::vector<SegmentDecomposition> trees;
    storage.reserve(nets.size());
    trees.reserve(nets.size());
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
    }
    const auto run_batch = [&](int threads) {
        return batch_map<double>(
            trees.size(),
            [&](std::size_t i) {
                const WiresizeContext ctx(trees[i], tech,
                                          WidthSet::uniform_steps(kR));
                return grewsa_owsa(ctx).delay;
            },
            threads);
    };
    const int threads = default_thread_count();
    std::vector<double> serial_delays, parallel_delays;
    const double serial_s = time_best([&] { serial_delays = run_batch(1); });
    const double parallel_s =
        time_best([&] { parallel_delays = run_batch(threads); });
    const bool batch_identical = serial_delays == parallel_delays;
    std::cout << "batch grewsa_owsa: " << kBatchNets << " nets  serial "
              << fmt_sci(serial_s, 2) << "s  parallel(" << threads << " threads) "
              << fmt_sci(parallel_s, 2) << "s  identical "
              << (batch_identical ? "yes" : "NO") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"wiresize_scaling\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"widths_r\": " << kR << ",\n"
        << "  \"grewsa\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScalingRow& r = rows[i];
        out << "    {\"sinks\": " << r.sinks << ", \"segments\": " << r.segments
            << ", \"reference_s\": " << fmt_sci(r.reference_s, 4)
            << ", \"incremental_s\": " << fmt_sci(r.incremental_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"fixpoint_identical\": "
            << (r.fixpoint_identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"batch\": {\"nets\": " << kBatchNets
        << ", \"sinks\": " << kBatchSinks << ", \"threads\": " << threads
        << ", \"serial_s\": " << fmt_sci(serial_s, 4)
        << ", \"parallel_s\": " << fmt_sci(parallel_s, 4)
        << ", \"identical\": " << (batch_identical ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';
    return true;
}

}  // namespace
}  // namespace cong93

int main(int argc, char** argv)
{
    std::string json_path = "BENCH_wiresize.json";
    bool json_only = false;
    std::vector<char*> keep;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strcmp(argv[i], "--json-only") == 0)
            json_only = true;
        else
            keep.push_back(argv[i]);
    }
    if (!json_only) {
        int kargc = static_cast<int>(keep.size());
        benchmark::Initialize(&kargc, keep.data());
        if (benchmark::ReportUnrecognizedArguments(kargc, keep.data())) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return cong93::write_scaling_json(json_path) ? 0 : 1;
}
