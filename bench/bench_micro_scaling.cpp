// Algorithm scaling micro-benchmarks (google-benchmark): A-tree construction
// vs sink count, OWSA vs width count (the O(n^{r-1}) of Theorem 5),
// GREWSA vs sink count (incremental engine vs the O(n^2)-per-sweep
// reference), batch throughput, and the two simulators vs tree size.
//
// After the google-benchmark suite runs, two deterministic scaling studies
// are written so the perf trajectory is machine-readable across PRs:
// BENCH_wiresize.json (net size vs wall-clock for the reference, incremental
// and parallel-batch GREWSA paths) and BENCH_atree.json (A-tree construction
// wall-clock, Mode::reference full-rescan vs Mode::indexed cached queries,
// with bit-identity checks for both heuristic policies).
//
// BENCH_pipeline.json (the route_batch throughput study: flat-kernel vs
// pointer-walk speedups with bit-identity checks, end-to-end nets/sec at
// 1/2/4/8 threads with byte-identity vs the serial run, a zero expected
// failure count and a compiles_per_net == 1.0 witness per row, a
// fault-injection determinism probe -- serial vs threaded failure counts and
// byte-identity under a soak plan -- and the workspace-arena reuse proof).
//
// BENCH_metrics.json (the canonical-IR consumer study: the five tree
// metrics, RC-tree construction, the two simulators, and the SVG renderer,
// each timed flat vs its cong_oracles pointer-walk twin with exact identity
// checks).
//
// BENCH_simd.json (the vectorized-kernel study: per-kernel speedup of the
// active vector ISA over the scalar anchor in relaxed and strict modes with
// ULP/bit-identity flags, plus the lane-batched route_batch throughput with
// pack occupancy).  The oracle-anchored studies above run under a scalar
// dispatch pin so their exact-identity checks keep comparing seed bits.
//
// BENCH_eco.json (the session-engine study: ECO single-sink-move repair
// latency vs from-scratch route_single on quadrant-skewed and uniform
// 120-sink nets with bit-identity gates, hash-consed route-cache throughput
// on duplicate-laden batches at controlled dup ratios with byte-identity vs
// the cache-off run, and the serial-vs-4-thread cache determinism probe).
//
// BENCH_chip.json (the chip workload study: a 100k-net generated design
// streamed through route_stream in 512-net chunks -- nets/sec at 1 and 4
// threads with byte-identity of the serialized results, chunked vs
// one-shot byte-identity, the bounded-memory witness comparing workspace
// resident bytes against a 10x smaller design, and the measured-vs-
// bounding-box delay-model band with planted RAT violations for WNS/TNS).
//
//   --json=PATH          output path for the wiresize study (default BENCH_wiresize.json)
//   --atree-json=PATH    output path for the A-tree study (default BENCH_atree.json)
//   --pipeline-json=PATH output path for the pipeline study (default BENCH_pipeline.json)
//   --metrics-json=PATH  output path for the IR-consumer study (default BENCH_metrics.json)
//   --simd-json=PATH     output path for the SIMD study (default BENCH_simd.json)
//   --eco-json=PATH      output path for the session study (default BENCH_eco.json)
//   --serve-json=PATH    output path for the service overload study
//                        (default BENCH_serve.json)
//   --chip-json=PATH     output path for the chip workload study
//                        (default BENCH_chip.json)
//   --json-only          skip the google-benchmark suite, only write the studies
//   --smoke              small-size studies only (CI smoke job)
//   --skip-wiresize      do not (re)generate the wiresize study
//   --skip-atree         do not (re)generate the A-tree study
//   --threads-list=T,..  thread counts swept by the pipeline scaling rows and
//                        the eco cache determinism probe (default 1,2,4,8)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <limits>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "atree/atree.h"
#include "atree/generalized.h"
#include "batch/batch.h"
#include "batch/pipeline.h"
#include "bench_common.h"
#include "delay/elmore.h"
#include "delay/rph.h"
#include "sim/moments.h"
#include "sim/rc_tree.h"
#include "netgen/netgen.h"
#include "report/chip_report.h"
#include "rtree/flat_tree.h"
#include "rtree/io.h"
#include "rtree/metrics.h"
#include "rtree/svg.h"
#include "report/table.h"
#include "session/service.h"
#include "session/session.h"
#include "sim/delay_measure.h"
#include "sim/transient.h"
#include "sim/two_pole.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tech/technology.h"
#include "wiresize/combined.h"
#include "wiresize/grewsa.h"
#include "wiresize/owsa.h"
#include "workload/net_source.h"
#include "workload/stream.h"

namespace cong93 {
namespace {

void BM_AtreeBuild(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const auto nets = random_nets(1, 16, kMcmGrid, sinks);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_atree_general(nets[i % nets.size()]));
        ++i;
    }
}
BENCHMARK(BM_AtreeBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_AtreeBuildReference(benchmark::State& state)
{
    // The seed query path (full segment rescan per root per step): the
    // baseline the indexed engine is measured against.
    const int sinks = static_cast<int>(state.range(0));
    const auto nets = random_nets(1, 16, kMcmGrid, sinks);
    AtreeOptions opts;
    opts.mode = Mode::reference;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_atree_general(nets[i % nets.size()], opts));
        ++i;
    }
}
BENCHMARK(BM_AtreeBuildReference)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Owsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(owsa(ctx));
}
BENCHMARK(BM_Owsa)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_Grewsa(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(3, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_from_min(ctx));
}
BENCHMARK(BM_Grewsa)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_GrewsaReference(benchmark::State& state)
{
    // The seed evaluation path (full theta/phi/psi re-derivation per
    // refinement): the baseline the incremental engine is measured against.
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(3, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(4));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            grewsa_reference(ctx, min_assignment(ctx.segment_count())));
}
BENCHMARK(BM_GrewsaReference)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_GrewsaOwsa(benchmark::State& state)
{
    const int r = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(2, 1, kMcmGrid, 16)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const SegmentDecomposition segs(tree);
    const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(r));
    for (auto _ : state) benchmark::DoNotOptimize(grewsa_owsa(ctx));
}
BENCHMARK(BM_GrewsaOwsa)->Arg(2)->Arg(4)->Arg(6);

void BM_BatchGrewsaOwsa(benchmark::State& state)
{
    // Whole-batch throughput of the thread-pool driver (one grewsa_owsa per
    // net); threads = CONG93_THREADS or hardware concurrency.
    const int nets_n = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const auto nets = random_nets(5, nets_n, kMcmGrid, 16);
    std::vector<RoutingTree> storage;
    std::vector<SegmentDecomposition> trees;
    storage.reserve(nets.size());
    trees.reserve(nets.size());
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
    }
    for (auto _ : state) {
        const auto delays = batch_map<double>(trees.size(), [&](std::size_t i) {
            const WiresizeContext ctx(trees[i], tech, WidthSet::uniform_steps(4));
            return grewsa_owsa(ctx).delay;
        });
        benchmark::DoNotOptimize(delays);
    }
}
BENCHMARK(BM_BatchGrewsaOwsa)->Arg(8)->Arg(32);

void BM_TwoPoleSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    const RcTree rc = RcTree::from_routing_tree(tree, tech);
    for (auto _ : state) benchmark::DoNotOptimize(two_pole_sink_delays(rc));
}
BENCHMARK(BM_TwoPoleSim)->Arg(8)->Arg(32);

void BM_TransientSim(benchmark::State& state)
{
    const int sinks = static_cast<int>(state.range(0));
    const Technology tech = mcm_technology();
    const Net net = random_nets(4, 1, kMcmGrid, sinks)[0];
    const RoutingTree tree = build_atree_general(net).tree;
    for (auto _ : state)
        benchmark::DoNotOptimize(measure_delay(tree, tech, SimMethod::transient));
}
BENCHMARK(BM_TransientSim)->Arg(8)->Arg(32);

// ---------------------------------------------------------------------------
// BENCH_wiresize.json scaling study
// ---------------------------------------------------------------------------

/// Best-of-k wall-clock of fn(), with k sized so the total stays ~50ms.
/// Runs that already take over a second are measured once (the slow
/// reference baselines at large sizes would otherwise dominate the study).
template <typename Fn>
double time_best(Fn&& fn)
{
    const double warmup = bench::time_seconds(fn);
    if (warmup > 1.0) return warmup;
    const int reps = std::clamp(static_cast<int>(0.05 / std::max(warmup, 1e-9)), 2, 15);
    double best = warmup;
    for (int i = 0; i < reps; ++i) best = std::min(best, bench::time_seconds(fn));
    return best;
}

struct ScalingRow {
    int sinks = 0;
    std::size_t segments = 0;
    double reference_s = 0.0;
    double incremental_s = 0.0;
    bool fixpoint_identical = false;
    double speedup() const
    {
        return incremental_s > 0.0 ? reference_s / incremental_s : 0.0;
    }
};

bool write_scaling_json(const std::string& path)
{
    constexpr int kR = 4;
    const Technology tech = mcm_technology();

    std::vector<ScalingRow> rows;
    for (const int sinks : {12, 25, 50, 100, 200}) {
        const Net net = random_nets(1993, 1, kMcmGrid, sinks)[0];
        const RoutingTree tree = build_atree_general(net).tree;
        const SegmentDecomposition segs(tree);
        const WiresizeContext ctx(segs, tech, WidthSet::uniform_steps(kR));

        ScalingRow row;
        row.sinks = sinks;
        row.segments = segs.count();
        GrewsaResult ref, inc;
        row.reference_s = time_best(
            [&] { ref = grewsa_reference(ctx, min_assignment(segs.count())); });
        row.incremental_s = time_best([&] { inc = grewsa_from_min(ctx); });
        row.fixpoint_identical =
            ref.assignment == inc.assignment && ref.delay == inc.delay;
        rows.push_back(row);
        std::cout << "grewsa scaling: " << row.segments << " segments  reference "
                  << fmt_sci(row.reference_s, 2) << "s  incremental "
                  << fmt_sci(row.incremental_s, 2) << "s  speedup "
                  << fmt_fixed(row.speedup(), 1) << "x  identical "
                  << (row.fixpoint_identical ? "yes" : "NO") << '\n';
    }

    // Batch throughput: the full grewsa_owsa flow over a fixed batch,
    // serial vs thread pool, verifying bit-identical results.
    constexpr int kBatchNets = 32;
    constexpr int kBatchSinks = 16;
    const auto nets = random_nets(7, kBatchNets, kMcmGrid, kBatchSinks);
    std::vector<RoutingTree> storage;
    std::vector<SegmentDecomposition> trees;
    storage.reserve(nets.size());
    trees.reserve(nets.size());
    for (const Net& net : nets) {
        storage.push_back(build_atree_general(net).tree);
        trees.emplace_back(storage.back());
    }
    const auto run_batch = [&](int threads) {
        return batch_map<double>(
            trees.size(),
            [&](std::size_t i) {
                const WiresizeContext ctx(trees[i], tech,
                                          WidthSet::uniform_steps(kR));
                return grewsa_owsa(ctx).delay;
            },
            threads);
    };
    const int threads = default_thread_count();
    std::vector<double> serial_delays, parallel_delays;
    const double serial_s = time_best([&] { serial_delays = run_batch(1); });
    const double parallel_s =
        time_best([&] { parallel_delays = run_batch(threads); });
    const bool batch_identical = serial_delays == parallel_delays;
    std::cout << "batch grewsa_owsa: " << kBatchNets << " nets  serial "
              << fmt_sci(serial_s, 2) << "s  parallel(" << threads << " threads) "
              << fmt_sci(parallel_s, 2) << "s  identical "
              << (batch_identical ? "yes" : "NO") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"wiresize_scaling\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"widths_r\": " << kR << ",\n"
        << "  \"grewsa\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScalingRow& r = rows[i];
        out << "    {\"sinks\": " << r.sinks << ", \"segments\": " << r.segments
            << ", \"reference_s\": " << fmt_sci(r.reference_s, 4)
            << ", \"incremental_s\": " << fmt_sci(r.incremental_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"fixpoint_identical\": "
            << (r.fixpoint_identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"batch\": {\"nets\": " << kBatchNets
        << ", \"sinks\": " << kBatchSinks << ", \"threads\": " << threads
        << ", \"serial_s\": " << fmt_sci(serial_s, 4)
        << ", \"parallel_s\": " << fmt_sci(parallel_s, 4)
        << ", \"identical\": " << (batch_identical ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';
    return true;
}

// ---------------------------------------------------------------------------
// BENCH_atree.json scaling study
// ---------------------------------------------------------------------------

struct AtreeRow {
    int sinks = 0;
    double reference_s = 0.0;
    double indexed_s = 0.0;
    bool identical = false;
    double speedup() const
    {
        return indexed_s > 0.0 ? reference_s / indexed_s : 0.0;
    }
};

bool results_identical(const AtreeResult& a, const AtreeResult& b)
{
    return format_tree(a.tree) == format_tree(b.tree) &&
           a.safe_moves == b.safe_moves && a.heuristic_moves == b.heuristic_moves &&
           a.cost == b.cost && a.sb_total == b.sb_total &&
           a.qmst_cost == b.qmst_cost && a.sb_qmst_total == b.sb_qmst_total;
}

AtreeRow time_atree_modes(const Net& net, HeuristicPolicy policy, int sinks)
{
    AtreeOptions ref_opts, idx_opts;
    ref_opts.policy = idx_opts.policy = policy;
    ref_opts.mode = Mode::reference;
    idx_opts.mode = Mode::indexed;

    AtreeRow row;
    row.sinks = sinks;
    std::optional<AtreeResult> ref, idx;
    row.reference_s = time_best([&] { ref = build_atree(net, ref_opts); });
    row.indexed_s = time_best([&] { idx = build_atree(net, idx_opts); });
    row.identical = results_identical(*ref, *idx);
    return row;
}

bool write_atree_json(const std::string& path, bool smoke)
{
    // Corner-source nets keep all sinks in one quadrant, so a single A-tree
    // construction carries the whole net -- the harshest case for the
    // reference's full-rescan query path.
    const std::vector<int> sizes =
        smoke ? std::vector<int>{12, 25} : std::vector<int>{12, 25, 50, 100, 200, 400};

    std::vector<AtreeRow> rows;
    for (const int sinks : sizes) {
        const Net net = random_corner_nets(93, 1, kMcmGrid, sinks)[0];
        const AtreeRow row =
            time_atree_modes(net, HeuristicPolicy::farthest_corner, sinks);
        rows.push_back(row);
        std::cout << "atree scaling: " << row.sinks << " sinks  reference "
                  << fmt_sci(row.reference_s, 2) << "s  indexed "
                  << fmt_sci(row.indexed_s, 2) << "s  speedup "
                  << fmt_fixed(row.speedup(), 1) << "x  identical "
                  << (row.identical ? "yes" : "NO") << '\n';
    }

    // The min_suboptimality policy adds the per-pair df estimate to each
    // heuristic move; cross-check identity (and timing) at moderate sizes.
    std::vector<AtreeRow> minsb_rows;
    for (const int sinks : sizes) {
        if (sinks > 100) continue;
        const Net net = random_corner_nets(93, 1, kMcmGrid, sinks)[0];
        const AtreeRow row =
            time_atree_modes(net, HeuristicPolicy::min_suboptimality, sinks);
        minsb_rows.push_back(row);
        std::cout << "atree min_sb:  " << row.sinks << " sinks  reference "
                  << fmt_sci(row.reference_s, 2) << "s  indexed "
                  << fmt_sci(row.indexed_s, 2) << "s  speedup "
                  << fmt_fixed(row.speedup(), 1) << "x  identical "
                  << (row.identical ? "yes" : "NO") << '\n';
    }

    // Batch throughput: whole A-tree constructions over a fixed batch of
    // general nets, serial vs thread pool, verifying identical trees.
    constexpr int kBatchNets = 16;
    constexpr int kBatchSinks = 24;
    const auto nets = random_nets(17, kBatchNets, kMcmGrid, kBatchSinks);
    const auto run_batch = [&](int threads) {
        return batch_map<std::string>(
            nets.size(),
            [&](std::size_t i) { return format_tree(build_atree_general(nets[i]).tree); },
            threads);
    };
    const int threads = default_thread_count();
    std::vector<std::string> serial_trees, parallel_trees;
    const double serial_s = time_best([&] { serial_trees = run_batch(1); });
    const double parallel_s =
        time_best([&] { parallel_trees = run_batch(threads); });
    const bool batch_identical = serial_trees == parallel_trees;
    std::cout << "batch atree: " << kBatchNets << " nets  serial "
              << fmt_sci(serial_s, 2) << "s  parallel(" << threads << " threads) "
              << fmt_sci(parallel_s, 2) << "s  identical "
              << (batch_identical ? "yes" : "NO") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    const auto write_rows = [&](const std::vector<AtreeRow>& rs) {
        for (std::size_t i = 0; i < rs.size(); ++i) {
            const AtreeRow& r = rs[i];
            out << "    {\"sinks\": " << r.sinks
                << ", \"reference_s\": " << fmt_sci(r.reference_s, 4)
                << ", \"indexed_s\": " << fmt_sci(r.indexed_s, 4)
                << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
                << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
                << (i + 1 < rs.size() ? "," : "") << '\n';
        }
    };
    out << "{\n"
        << "  \"benchmark\": \"atree_scaling\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"nets\": \"corner_source_seed93\",\n"
        << "  \"atree\": [\n";
    write_rows(rows);
    out << "  ],\n"
        << "  \"min_suboptimality_identity\": [\n";
    write_rows(minsb_rows);
    out << "  ],\n"
        << "  \"batch\": {\"nets\": " << kBatchNets
        << ", \"sinks\": " << kBatchSinks << ", \"threads\": " << threads
        << ", \"serial_s\": " << fmt_sci(serial_s, 4)
        << ", \"parallel_s\": " << fmt_sci(parallel_s, 4)
        << ", \"identical\": " << (batch_identical ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_identical = batch_identical;
    for (const AtreeRow& r : rows) all_identical = all_identical && r.identical;
    for (const AtreeRow& r : minsb_rows) all_identical = all_identical && r.identical;
    return all_identical;
}

// ---------------------------------------------------------------------------
// BENCH_pipeline.json throughput study
// ---------------------------------------------------------------------------

/// Per-call wall-clock of a microsecond-scale kernel: times a fixed inner
/// loop (so the clock granularity does not dominate) and divides.
template <typename Fn>
double time_kernel(Fn&& fn)
{
    constexpr int kIters = 256;
    return time_best([&] {
               for (int i = 0; i < kIters; ++i) fn();
           }) /
           kIters;
}

struct KernelRow {
    int sinks = 0;
    const char* kernel = "";
    double reference_s = 0.0;
    double flat_s = 0.0;
    bool identical = false;
    double speedup() const
    {
        return flat_s > 0.0 ? reference_s / flat_s : 0.0;
    }
};

struct PipelineRow {
    int threads = 0;
    double seconds = 0.0;
    double nets_per_sec = 0.0;
    double speedup = 0.0;
    bool identical = false;
    std::uint64_t failed = 0;  ///< nets below the ok rung (must be 0 here)
    double compiles_per_net = 0.0;  ///< must be exactly 1.0 on a clean batch
};

// ---------------------------------------------------------------------------
// BENCH_metrics.json: canonical-IR consumers vs their pointer-walk oracles
// ---------------------------------------------------------------------------

bool write_metrics_json(const std::string& path, bool smoke)
{
    // Every downstream layer ported to the FlatTree IR, measured against its
    // cong_oracles twin on the same nets with exact (==) identity checks:
    // the five tree metrics, RC-tree construction, the two simulators, and
    // the SVG renderer (byte identity).  Scalar dispatch pin: the oracles
    // are the seed kernels, which only the scalar ISA reproduces bitwise.
    ScopedSimdMode scalar_pin(SimdMode::scalar);
    const Technology tech = mcm_technology();
    const std::vector<int> sizes =
        smoke ? std::vector<int>{12, 25} : std::vector<int>{12, 25, 50, 100, 200};

    std::vector<KernelRow> rows;
    for (const int sinks : sizes) {
        const Net net = random_nets(9203, 1, kMcmGrid, sinks)[0];
        const RoutingTree tree = build_atree_general(net).tree;
        const FlatTree ft(tree);

        const auto add = [&](const char* kernel, bool identical, auto&& ref_fn,
                             auto&& flat_fn) {
            KernelRow row;
            row.sinks = sinks;
            row.kernel = kernel;
            row.identical = identical;
            row.reference_s = time_kernel(ref_fn);
            row.flat_s = time_kernel(flat_fn);
            rows.push_back(row);
            std::cout << "metrics kernel: " << sinks << " sinks  " << kernel
                      << "  reference " << fmt_sci(row.reference_s, 2)
                      << "s  flat " << fmt_sci(row.flat_s, 2) << "s  speedup "
                      << fmt_fixed(row.speedup(), 1) << "x  identical "
                      << (identical ? "yes" : "NO") << '\n';
        };

        add("total_length", total_length(ft) == total_length_reference(tree),
            [&] { benchmark::DoNotOptimize(total_length_reference(tree)); },
            [&] { benchmark::DoNotOptimize(total_length(ft)); });
        add("sink_path_lengths",
            sum_sink_path_lengths(ft) == sum_sink_path_lengths_reference(tree),
            [&] { benchmark::DoNotOptimize(sum_sink_path_lengths_reference(tree)); },
            [&] { benchmark::DoNotOptimize(sum_sink_path_lengths(ft)); });
        add("all_node_path_lengths",
            sum_all_node_path_lengths(ft) ==
                sum_all_node_path_lengths_reference(tree),
            [&] {
                benchmark::DoNotOptimize(sum_all_node_path_lengths_reference(tree));
            },
            [&] { benchmark::DoNotOptimize(sum_all_node_path_lengths(ft)); });
        add("radius", radius(ft) == radius_reference(tree),
            [&] { benchmark::DoNotOptimize(radius_reference(tree)); },
            [&] { benchmark::DoNotOptimize(radius(ft)); });
        add("mdrt_cost",
            mdrt_cost(ft, 1.0, 0.5, 0.25) ==
                mdrt_cost_reference(tree, 1.0, 0.5, 0.25),
            [&] { benchmark::DoNotOptimize(mdrt_cost_reference(tree, 1.0, 0.5, 0.25)); },
            [&] { benchmark::DoNotOptimize(mdrt_cost(ft, 1.0, 0.5, 0.25)); });

        // RC construction and the simulators: the flat-built and the
        // pointer-walk-built RC trees must be indistinguishable all the way
        // through the waveform outputs.
        const RcTree rc_flat = RcTree::from_flat_tree(ft, tech);
        const RcTree rc_ref = RcTree::from_routing_tree_reference(tree, tech);
        bool rc_identical = rc_flat.size() == rc_ref.size() &&
                            rc_flat.sink_nodes() == rc_ref.sink_nodes();
        for (std::size_t i = 0; rc_identical && i < rc_flat.size(); ++i)
            rc_identical = rc_flat.node(i).parent == rc_ref.node(i).parent &&
                           rc_flat.node(i).r_ohm == rc_ref.node(i).r_ohm &&
                           rc_flat.node(i).c_f == rc_ref.node(i).c_f &&
                           rc_flat.node(i).l_h == rc_ref.node(i).l_h;
        add("rc_build", rc_identical,
            [&] {
                benchmark::DoNotOptimize(
                    RcTree::from_routing_tree_reference(tree, tech));
            },
            [&] { benchmark::DoNotOptimize(RcTree::from_flat_tree(ft, tech)); });
        add("two_pole",
            two_pole_sink_delays(rc_flat) == two_pole_sink_delays(rc_ref),
            [&] { benchmark::DoNotOptimize(two_pole_sink_delays(rc_ref)); },
            [&] { benchmark::DoNotOptimize(two_pole_sink_delays(rc_flat)); });
        if (sinks <= 50) {
            // Backward Euler is O(timesteps * nodes); per-call timing keeps
            // the study wall-clock bounded, and larger nets add no coverage.
            KernelRow row;
            row.sinks = sinks;
            row.kernel = "transient";
            row.identical =
                transient_sink_delays(rc_flat) == transient_sink_delays(rc_ref);
            row.reference_s = time_best(
                [&] { benchmark::DoNotOptimize(transient_sink_delays(rc_ref)); });
            row.flat_s = time_best(
                [&] { benchmark::DoNotOptimize(transient_sink_delays(rc_flat)); });
            rows.push_back(row);
            std::cout << "metrics kernel: " << sinks << " sinks  transient"
                      << "  reference " << fmt_sci(row.reference_s, 2)
                      << "s  flat " << fmt_sci(row.flat_s, 2) << "s  identical "
                      << (row.identical ? "yes" : "NO") << '\n';
        }
        add("svg", to_svg(ft) == to_svg_reference(tree),
            [&] { benchmark::DoNotOptimize(to_svg_reference(tree)); },
            [&] { benchmark::DoNotOptimize(to_svg(ft)); });
    }

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"flat_ir_consumers\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const KernelRow& r = rows[i];
        out << "    {\"sinks\": " << r.sinks << ", \"kernel\": \"" << r.kernel
            << "\", \"reference_s\": " << fmt_sci(r.reference_s, 4)
            << ", \"flat_s\": " << fmt_sci(r.flat_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_identical = true;
    for (const KernelRow& r : rows) all_identical = all_identical && r.identical;
    return all_identical;
}

bool write_pipeline_json(const std::string& path, bool smoke,
                         const std::vector<int>& threads_list)
{
    // Scalar dispatch pin, for the same reason as write_metrics_json: this
    // study's identity columns are defined against the seed oracles, and its
    // timing rows are the scalar-anchor trajectory that BENCH_simd.json
    // reports vectorized speedups over.
    ScopedSimdMode scalar_pin(SimdMode::scalar);
    const Technology tech = mcm_technology();

    // --- flat kernels vs the pointer-walk references --------------------
    // The flat side is measured in its batch-serving shape: the FlatTree is
    // compiled once into a Workspace arena and the evaluators reuse its
    // scratch, exactly as route_batch runs them per net.  The reference side
    // is the seed per-call pointer walk.  Identity is checked exactly (==).
    const std::vector<int> sizes =
        smoke ? std::vector<int>{12, 25} : std::vector<int>{12, 25, 50, 100, 200};
    std::vector<KernelRow> kernel_rows;
    for (const int sinks : sizes) {
        const Net net = random_nets(4093, 1, kMcmGrid, sinks)[0];
        const RoutingTree tree = build_atree_general(net).tree;
        Workspace ws;
        ws.flat.build(tree);

        {
            KernelRow row;
            row.sinks = sinks;
            row.kernel = "elmore";
            const auto ref = elmore_all_sinks_reference(tree, tech);
            row.identical = elmore_all_sinks(ws.flat, tech) == ref;
            row.reference_s = time_kernel([&] {
                benchmark::DoNotOptimize(elmore_all_sinks_reference(tree, tech));
            });
            row.flat_s = time_kernel([&] {
                elmore_all_sinks(ws.flat, tech, ws.caps, ws.sink_delays);
                benchmark::DoNotOptimize(ws.sink_delays.data());
            });
            kernel_rows.push_back(row);
        }
        {
            KernelRow row;
            row.sinks = sinks;
            row.kernel = "rph";
            const RphTerms ref = rph_terms_reference(tree, tech);
            const RphTerms flat = rph_terms(ws.flat, tech);
            row.identical = flat.t1 == ref.t1 && flat.t2 == ref.t2 &&
                            flat.t3 == ref.t3 && flat.t4 == ref.t4;
            row.reference_s = time_kernel([&] {
                benchmark::DoNotOptimize(rph_terms_reference(tree, tech));
            });
            row.flat_s = time_kernel(
                [&] { benchmark::DoNotOptimize(rph_terms(ws.flat, tech)); });
            kernel_rows.push_back(row);
        }
        {
            KernelRow row;
            row.sinks = sinks;
            row.kernel = "moments";
            const RcTree rc = RcTree::from_routing_tree(tree, tech, 8);
            const auto ref = compute_moments_reference(rc, 3);
            const auto& flat = compute_moments(rc, 3, ws.moments);
            row.identical = flat == ref;
            row.reference_s = time_kernel([&] {
                benchmark::DoNotOptimize(compute_moments_reference(rc, 3));
            });
            row.flat_s = time_kernel([&] {
                benchmark::DoNotOptimize(compute_moments(rc, 3, ws.moments));
            });
            kernel_rows.push_back(row);
        }
        for (auto it = kernel_rows.end() - 3; it != kernel_rows.end(); ++it)
            std::cout << "pipeline kernel: " << it->sinks << " sinks  "
                      << it->kernel << "  reference " << fmt_sci(it->reference_s, 2)
                      << "s  flat " << fmt_sci(it->flat_s, 2) << "s  speedup "
                      << fmt_fixed(it->speedup(), 1) << "x  identical "
                      << (it->identical ? "yes" : "NO") << '\n';
    }

    // --- end-to-end route_batch scaling ---------------------------------
    // Byte-identity (hexfloat serialization) of every thread count against
    // the serial run; speedup is bounded by the container's core count,
    // recorded below as hardware_concurrency.
    const int batch_nets = smoke ? 12 : 64;
    const int batch_sinks = smoke ? 10 : 16;
    const auto nets = random_nets(29, batch_nets, kMcmGrid, batch_sinks);
    PipelineOptions serial_opts;
    serial_opts.threads = 1;
    std::vector<Workspace> serial_ws;
    std::vector<NetRouteResult> serial_results;
    const double serial_s = time_best(
        [&] { serial_results = route_batch(nets, tech, serial_opts, nullptr,
                                           &serial_ws); });
    const std::string serial_fmt = format_results(serial_results);

    std::vector<PipelineRow> pipeline_rows;
    for (const int threads : threads_list) {
        PipelineOptions opts;
        opts.threads = threads;
        std::vector<Workspace> ws;
        std::vector<NetRouteResult> results;
        PipelineStats stats;
        PipelineRow row;
        row.threads = threads;
        row.seconds = time_best(
            [&] { results = route_batch(nets, tech, opts, &stats, &ws); });
        row.nets_per_sec = static_cast<double>(nets.size()) / row.seconds;
        row.speedup = serial_s / row.seconds;
        row.identical = format_results(results) == serial_fmt;
        row.failed = stats.nets_not_ok();  // any degradation here is a bug
        row.compiles_per_net = stats.compiles_per_net;
        pipeline_rows.push_back(row);
        std::cout << "pipeline batch: " << batch_nets << " nets  threads "
                  << threads << "  " << fmt_sci(row.seconds, 2) << "s  "
                  << fmt_fixed(row.nets_per_sec, 0) << " nets/s  speedup "
                  << fmt_fixed(row.speedup, 2) << "x  identical "
                  << (row.identical ? "yes" : "NO") << "  failed "
                  << row.failed << "  compiles/net "
                  << fmt_fixed(row.compiles_per_net, 2) << '\n';
    }

    // --- fault-injection determinism probe ------------------------------
    // One soak plan hitting every stage, serial vs threaded: the degraded
    // outcome set must be byte-identical (results *and* diagnostics), and
    // the threaded failure count must equal the serial one
    // (expected_failed).  check_bench_regression.py hard-fails on either
    // violation.
    const char* fault_spec =
        "seed=7,topology=0.3,fallback=0.4,wiresize=0.3,moment=0.2,nan=0.15,"
        "arena-cap=12@0.2";
    PipelineOptions fault_serial;
    fault_serial.threads = 1;
    fault_serial.faults = FaultPlan::parse(fault_spec);
    PipelineOptions fault_threaded = fault_serial;
    fault_threaded.threads = 4;
    PipelineStats fault_s1, fault_s4;
    const auto fault_ref = route_batch(nets, tech, fault_serial, &fault_s1);
    const auto fault_par = route_batch(nets, tech, fault_threaded, &fault_s4);
    const bool fault_identical =
        format_results(fault_ref) == format_results(fault_par);
    std::cout << "pipeline faults: " << batch_nets << " nets  serial not-ok "
              << fault_s1.nets_not_ok() << "  threaded not-ok "
              << fault_s4.nets_not_ok() << "  events " << fault_s1.fault_events
              << "  identical " << (fault_identical ? "yes" : "NO") << '\n';

    // --- workspace arena reuse proof ------------------------------------
    // Two identical serial passes through one arena: the second pass must
    // re-build every tree (builds doubles) without a single buffer growth.
    std::vector<Workspace> arena;
    PipelineStats first, second;
    route_batch(nets, tech, serial_opts, &first, &arena);
    route_batch(nets, tech, serial_opts, &second, &arena);
    const bool arena_reused =
        second.counters.tree_builds == 2 * first.counters.tree_builds &&
        second.counters.tree_growths == first.counters.tree_growths &&
        second.counters.moment_growths == first.counters.moment_growths &&
        second.counters.scratch_growths == first.counters.scratch_growths;
    std::cout << "pipeline arena: pass1 builds " << first.counters.tree_builds
              << " growths " << first.counters.tree_growths << "  pass2 builds "
              << second.counters.tree_builds << " growths "
              << second.counters.tree_growths << "  reused "
              << (arena_reused ? "yes" : "NO") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"pipeline_throughput\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
        const KernelRow& r = kernel_rows[i];
        out << "    {\"sinks\": " << r.sinks << ", \"kernel\": \"" << r.kernel
            << "\", \"reference_s\": " << fmt_sci(r.reference_s, 4)
            << ", \"flat_s\": " << fmt_sci(r.flat_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < kernel_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"pipeline\": [\n";
    for (std::size_t i = 0; i < pipeline_rows.size(); ++i) {
        const PipelineRow& r = pipeline_rows[i];
        out << "    {\"threads\": " << r.threads << ", \"nets\": " << batch_nets
            << ", \"sinks\": " << batch_sinks
            << ", \"seconds\": " << fmt_sci(r.seconds, 4)
            << ", \"nets_per_sec\": " << fmt_fixed(r.nets_per_sec, 1)
            << ", \"speedup\": " << fmt_fixed(r.speedup, 2)
            << ", \"identical\": " << (r.identical ? "true" : "false")
            << ", \"failed\": " << r.failed
            << ", \"compiles_per_net\": " << fmt_fixed(r.compiles_per_net, 2) << "}"
            << (i + 1 < pipeline_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"fault_injection\": {\"spec\": \"" << fault_spec
        << "\", \"nets\": " << batch_nets
        << ", \"expected_failed\": " << fault_s1.nets_not_ok()
        << ", \"failed\": " << fault_s4.nets_not_ok()
        << ", \"fault_events\": " << fault_s4.fault_events
        << ", \"identical\": " << (fault_identical ? "true" : "false")
        << "},\n"
        << "  \"arena\": {\"nets\": " << batch_nets
        << ", \"passes\": 2, \"tree_builds\": " << second.counters.tree_builds
        << ", \"tree_growths_first\": " << first.counters.tree_growths
        << ", \"tree_growths_second\": " << second.counters.tree_growths
        << ", \"moment_growths_first\": " << first.counters.moment_growths
        << ", \"moment_growths_second\": " << second.counters.moment_growths
        << ", \"scratch_growths_first\": " << first.counters.scratch_growths
        << ", \"scratch_growths_second\": " << second.counters.scratch_growths
        << ", \"reused\": " << (arena_reused ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_identical = arena_reused && fault_identical &&
                         fault_s1.nets_not_ok() == fault_s4.nets_not_ok();
    for (const KernelRow& r : kernel_rows)
        all_identical = all_identical && r.identical;
    for (const PipelineRow& r : pipeline_rows)
        all_identical = all_identical && r.identical && r.failed == 0 &&
                        r.compiles_per_net <= 1.0;
    return all_identical;
}

// ---------------------------------------------------------------------------
// BENCH_simd.json: vectorized kernels vs the scalar anchor
// ---------------------------------------------------------------------------

/// Distance in representable doubles; 0 for bit-equal values.
std::uint64_t ulps_between(double a, double b)
{
    if (a == b) return 0;
    if (!std::isfinite(a) || !std::isfinite(b)) return ~std::uint64_t{0};
    std::int64_t ia, ib;
    std::memcpy(&ia, &a, sizeof a);
    std::memcpy(&ib, &b, sizeof b);
    if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
    if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
    return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

constexpr std::uint64_t kSimdMaxUlps = 256;

struct SimdKernelRow {
    int sinks = 0;
    const char* kernel = "";
    const char* mode = "";  ///< "relaxed" (ULP gate) or "strict" (bit gate)
    double scalar_s = 0.0;
    double vector_s = 0.0;
    bool ok = false;
    double speedup() const
    {
        return vector_s > 0.0 ? scalar_s / vector_s : 0.0;
    }
};

bool write_simd_json(const std::string& path, bool smoke)
{
    const Technology tech = mcm_technology();
    const SimdIsa isa = resolve_simd_isa(SimdMode::auto_detect);
    // On a host without a compiled-in vector ISA the "vector" rows re-run
    // the scalar kernels; the file still records isa=scalar so the
    // regression checker and readers know no speedup claim is being made.
    const std::vector<int> sizes =
        smoke ? std::vector<int>{12, 25} : std::vector<int>{12, 25, 50, 100, 200};

    std::vector<SimdKernelRow> rows;
    for (const int sinks : sizes) {
        const Net net = random_nets(4093, 1, kMcmGrid, sinks)[0];
        const RoutingTree tree = build_atree_general(net).tree;
        Workspace ws;
        ws.flat.build(tree);
        const RcTree rc = RcTree::from_routing_tree(tree, tech, 8);

        // Scalar anchor: results and per-call wall-clock under a scalar pin.
        std::vector<double> elmore_seed;
        RphTerms rph_seed;
        std::vector<std::vector<double>> moments_seed;
        double elmore_s, rph_s, moments_s;
        {
            ScopedSimdMode pin(SimdMode::scalar);
            elmore_all_sinks(ws.flat, tech, ws.caps, ws.sink_delays);
            elmore_seed = ws.sink_delays;
            rph_seed = rph_terms(ws.flat, tech);
            moments_seed = compute_moments(rc, 3);
            elmore_s = time_kernel([&] {
                elmore_all_sinks(ws.flat, tech, ws.caps, ws.sink_delays);
                benchmark::DoNotOptimize(ws.sink_delays.data());
            });
            rph_s = time_kernel(
                [&] { benchmark::DoNotOptimize(rph_terms(ws.flat, tech)); });
            moments_s = time_kernel([&] {
                benchmark::DoNotOptimize(compute_moments(rc, 3, ws.moments));
            });
        }

        const auto run_mode = [&](bool strict) {
            ScopedSimdMode pin(SimdMode::auto_detect, strict);
            const char* mode = strict ? "strict" : "relaxed";
            const auto gate = [&](double seed, double got) {
                return strict ? seed == got
                              : ulps_between(seed, got) <= kSimdMaxUlps;
            };
            {
                SimdKernelRow row{sinks, "elmore", mode, elmore_s, 0.0, true};
                elmore_all_sinks(ws.flat, tech, ws.caps, ws.sink_delays);
                row.ok = ws.sink_delays.size() == elmore_seed.size();
                for (std::size_t i = 0; row.ok && i < elmore_seed.size(); ++i)
                    row.ok = gate(elmore_seed[i], ws.sink_delays[i]);
                row.vector_s = time_kernel([&] {
                    elmore_all_sinks(ws.flat, tech, ws.caps, ws.sink_delays);
                    benchmark::DoNotOptimize(ws.sink_delays.data());
                });
                rows.push_back(row);
            }
            {
                SimdKernelRow row{sinks, "rph", mode, rph_s, 0.0, true};
                const RphTerms t = rph_terms(ws.flat, tech);
                row.ok = t.t1 == rph_seed.t1 && t.t3 == rph_seed.t3 &&
                         gate(rph_seed.t2, t.t2) && gate(rph_seed.t4, t.t4);
                row.vector_s = time_kernel(
                    [&] { benchmark::DoNotOptimize(rph_terms(ws.flat, tech)); });
                rows.push_back(row);
            }
            {
                SimdKernelRow row{sinks, "moments", mode, moments_s, 0.0, true};
                const auto& m = compute_moments(rc, 3, ws.moments);
                row.ok = m.size() == moments_seed.size();
                for (std::size_t q = 0; row.ok && q < m.size(); ++q)
                    for (std::size_t i = 0; row.ok && i < m[q].size(); ++i)
                        row.ok = gate(moments_seed[q][i], m[q][i]);
                row.vector_s = time_kernel([&] {
                    benchmark::DoNotOptimize(compute_moments(rc, 3, ws.moments));
                });
                rows.push_back(row);
            }
            for (auto it = rows.end() - 3; it != rows.end(); ++it)
                std::cout << "simd kernel: " << it->sinks << " sinks  "
                          << it->kernel << ' ' << it->mode << "  scalar "
                          << fmt_sci(it->scalar_s, 2) << "s  "
                          << simd_isa_name(isa) << ' '
                          << fmt_sci(it->vector_s, 2) << "s  speedup "
                          << fmt_fixed(it->speedup(), 2) << "x  ok "
                          << (it->ok ? "yes" : "NO") << '\n';
        };
        run_mode(false);
        run_mode(true);
    }

    // --- lane-batched small-net throughput ------------------------------
    // Serial route_batch over many small nets, scalar anchor vs the relaxed
    // vectorized mode whose report stage runs lane packs.  Statuses must
    // match and the delay columns stay ULP-bounded; occupancy tracks how
    // full the packs ran.
    const int lb_nets = smoke ? 24 : 256;
    const int lb_sinks = 6;
    const auto lb = random_nets(31, lb_nets, kMcmGrid, lb_sinks);
    PipelineOptions lb_opts;
    lb_opts.threads = 1;
    std::vector<NetRouteResult> lb_seed, lb_vec;
    double lb_scalar_s, lb_vector_s;
    {
        ScopedSimdMode pin(SimdMode::scalar);
        lb_scalar_s =
            time_best([&] { lb_seed = route_batch(lb, tech, lb_opts); });
    }
    PipelineStats lb_stats;
    std::vector<Workspace> lb_ws;
    {
        ScopedSimdMode pin(SimdMode::auto_detect, false);
        lb_vector_s = time_best(
            [&] { lb_vec = route_batch(lb, tech, lb_opts, &lb_stats, &lb_ws); });
    }
    bool lb_ok = lb_seed.size() == lb_vec.size();
    for (std::size_t i = 0; lb_ok && i < lb_seed.size(); ++i)
        lb_ok = lb_seed[i].status == lb_vec[i].status &&
                ulps_between(lb_seed[i].elmore_max_s, lb_vec[i].elmore_max_s) <=
                    kSimdMaxUlps &&
                ulps_between(lb_seed[i].rph_s, lb_vec[i].rph_s) <= kSimdMaxUlps;
    const double lb_speedup = lb_vector_s > 0.0 ? lb_scalar_s / lb_vector_s : 0.0;
    std::cout << "simd lane batch: " << lb_nets << " nets  scalar "
              << fmt_sci(lb_scalar_s, 2) << "s  " << simd_isa_name(isa) << ' '
              << fmt_sci(lb_vector_s, 2) << "s  speedup "
              << fmt_fixed(lb_speedup, 2) << "x  packs "
              << lb_stats.counters.lane_packs << "  occupancy "
              << fmt_fixed(lb_stats.counters.lane_occupancy(), 2) << "  ok "
              << (lb_ok ? "yes" : "NO") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"simd_kernels\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"isa\": \"" << simd_isa_name(isa) << "\",\n"
        << "  \"lane_width\": " << simdk::lane_width(isa) << ",\n"
        << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SimdKernelRow& r = rows[i];
        out << "    {\"sinks\": " << r.sinks << ", \"kernel\": \"" << r.kernel
            << "\", \"mode\": \"" << r.mode
            << "\", \"scalar_s\": " << fmt_sci(r.scalar_s, 4)
            << ", \"vector_s\": " << fmt_sci(r.vector_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"ulp_ok\": " << (r.ok ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"lane_batch\": {\"nets\": " << lb_nets
        << ", \"sinks\": " << lb_sinks
        << ", \"scalar_s\": " << fmt_sci(lb_scalar_s, 4)
        << ", \"vector_s\": " << fmt_sci(lb_vector_s, 4)
        << ", \"speedup\": " << fmt_fixed(lb_speedup, 2)
        << ", \"lane_packs\": " << lb_stats.counters.lane_packs
        << ", \"lane_occupancy\": "
        << fmt_fixed(lb_stats.counters.lane_occupancy(), 3)
        << ", \"ulp_ok\": " << (lb_ok ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_ok = lb_ok;
    for (const SimdKernelRow& r : rows) all_ok = all_ok && r.ok;
    return all_ok;
}

// ---------------------------------------------------------------------------
// BENCH_eco.json: session ECO repair latency + hash-consed cache throughput
// ---------------------------------------------------------------------------

/// Per-call wall-clock of a call that mutates its own state (an ECO apply
/// alternating between two positions): best-of-passes over a fixed loop.
template <typename Fn>
double time_per_call(Fn&& fn, int iters)
{
    double best = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < 5; ++pass)
        best = std::min(best, bench::time_seconds([&] {
                            for (int i = 0; i < iters; ++i) fn();
                        }) / iters);
    return best;
}

/// Interior-source net with `bulk` sinks in quadrant (+,+) and `small`
/// sinks in each of the other three quadrants, all strictly interior.
Net skewed_net(std::uint64_t seed, int bulk, int small)
{
    std::mt19937_64 rng(seed);
    Net n;
    n.source = Point{2000, 2000};
    const auto fill = [&](int count, Coord x0, Coord y0) {
        while (count > 0) {
            const Point p{x0 + 1 + static_cast<Coord>(rng() % 1998),
                          y0 + 1 + static_cast<Coord>(rng() % 1998)};
            if (std::find(n.sinks.begin(), n.sinks.end(), p) != n.sinks.end())
                continue;
            n.sinks.push_back(p);
            --count;
        }
    };
    fill(bulk, 2000, 2000);
    fill(small, 0, 2000);
    fill(small, 0, 0);
    fill(small, 2000, 0);
    return n;
}

struct EcoRow {
    const char* kernel = "";
    int sinks = 0;
    double full_s = 0.0;  ///< from-scratch route_single latency
    double eco_s = 0.0;   ///< Session::apply latency
    bool incremental = false;
    bool identical = false;
    double speedup() const { return eco_s > 0.0 ? full_s / eco_s : 0.0; }
};

/// One ECO latency row: move sink `k` of `net` back and forth between two
/// in-quadrant positions, comparing Session::apply against from-scratch
/// route_single of the same mutated net.
EcoRow measure_eco_move(const char* kernel, const Technology& tech,
                        const Net& net, std::size_t k, Point pos_a, Point pos_b)
{
    EcoRow row;
    row.kernel = kernel;
    row.sinks = static_cast<int>(net.sinks.size());

    Session s(tech);
    const NetId id = s.add(net);

    // Identity gate first: both target positions, each apply bit-compared
    // against a from-scratch route of the mutated net.
    Workspace ws;
    row.identical = true;
    row.incremental = true;
    Net mutated = net;
    Technology t = tech;
    for (const Point& to : {pos_a, pos_b}) {
        const EcoDelta d = EcoDelta::make_move(k, to);
        apply_delta(mutated, t, d);
        const EcoOutcome o = s.apply(id, d);
        const NetRouteResult ref =
            route_single(mutated, o.request, 0, tech, PipelineOptions{}, ws);
        row.identical =
            row.identical &&
            format_results(std::vector<NetRouteResult>{o.result}) ==
                format_results(std::vector<NetRouteResult>{ref});
        row.incremental = row.incremental && o.incremental;
    }

    // Latency: alternate the two positions so every apply repairs.
    bool flip = false;
    row.eco_s = time_per_call(
        [&] {
            s.apply(id, EcoDelta::make_move(k, flip ? pos_a : pos_b));
            flip = !flip;
        },
        16);
    std::size_t req = 1000000;  // any index: faults are off, only diag changes
    flip = false;
    row.full_s = time_per_call(
        [&] {
            Net m = net;
            Technology mt = tech;
            apply_delta(m, mt, EcoDelta::make_move(k, flip ? pos_a : pos_b));
            benchmark::DoNotOptimize(
                route_single(m, req++, 0, tech, PipelineOptions{}, ws));
            flip = !flip;
        },
        8);
    return row;
}

struct CacheRow {
    std::string kernel;
    int nets = 0;
    int sinks = 0;
    double dup_ratio = 0.0;
    double off_s = 0.0;  ///< serial route_batch, no cache
    double on_s = 0.0;   ///< serial route_batch, fresh cache
    std::uint64_t served = 0;  ///< hits + single-flight shares (cache on)
    std::uint64_t resident_bytes = 0;  ///< cache RSS after the batch drain
    std::size_t entries = 0;           ///< interned signatures
    double compiles_per_routed_net = 0.0;
    bool identical = false;
    double speedup() const { return on_s > 0.0 ? off_s / on_s : 0.0; }
};

/// `total` nets of which ~`dup_ratio` are translated duplicates of earlier
/// base nets, deterministically interleaved.
std::vector<Net> dup_batch(std::uint64_t seed, int total, double dup_ratio,
                           int sinks)
{
    const int dups = static_cast<int>(total * dup_ratio);
    std::vector<Net> nets = random_nets(seed, total - dups, kMcmGrid, sinks);
    std::mt19937_64 rng(seed ^ 0xecull);
    for (int d = 0; d < dups; ++d) {
        Net copy = nets[rng() % nets.size()];
        const Coord dx = static_cast<Coord>(rng() % 64);
        const Coord dy = static_cast<Coord>(rng() % 64);
        copy.source = Point{copy.source.x + dx, copy.source.y + dy};
        for (Point& p : copy.sinks) p = Point{p.x + dx, p.y + dy};
        nets.push_back(std::move(copy));
    }
    std::shuffle(nets.begin(), nets.end(), rng);
    return nets;
}

bool write_eco_json(const std::string& path, bool smoke,
                    const std::vector<int>& threads_list)
{
    // Scalar pin for the same reason as the other studies: the identity
    // gates compare against route_single under the same dispatch, and the
    // timing rows should not drift with the host's vector ISA.
    ScopedSimdMode scalar_pin(SimdMode::scalar);
    const Technology tech = mcm_technology();

    // --- ECO repair latency vs full re-route ----------------------------
    // The headline row is the quadrant-skewed shape ECO repair is built
    // for: the bulk of the sinks in one quadrant, the edit in a small one,
    // so apply() rebuilds a 10-sink A-tree instead of a 150-sink one
    // (A-tree construction is superlinear in per-quadrant sinks) and
    // warm-starts GREWSA on the unchanged stems.  The uniform row is the
    // honest worst case: with ~30 sinks per quadrant the dirty quadrant is
    // a quarter of the work and the win is bounded accordingly.
    std::vector<EcoRow> eco_rows;
    {
        const Net skew = skewed_net(77, 150, 10);  // 180 sinks, 150 in (+,+)
        // Sink 150 is the first (-,+) sink; both targets stay in (-,+).
        eco_rows.push_back(measure_eco_move("eco_move_skewed", tech, skew, 150,
                                            Point{700, 2900},
                                            Point{1300, 3400}));
        const Net uni = skewed_net(78, 30, 30);  // 120 sinks, 30 per quadrant
        // Sink 30 is the first (-,+) sink; both targets stay in (-,+).
        eco_rows.push_back(measure_eco_move("eco_move_uniform", tech, uni, 30,
                                            Point{700, 2900},
                                            Point{1300, 3400}));
    }
    for (const EcoRow& r : eco_rows)
        std::cout << "eco latency: " << r.kernel << "  " << r.sinks
                  << " sinks  full " << fmt_sci(r.full_s, 2) << "s  eco "
                  << fmt_sci(r.eco_s, 2) << "s  speedup "
                  << fmt_fixed(r.speedup(), 1) << "x  incremental "
                  << (r.incremental ? "yes" : "NO") << "  identical "
                  << (r.identical ? "yes" : "NO") << '\n';

    // --- hash-consed cache throughput -----------------------------------
    // Serial route_batch over duplicate-laden batches, fresh cache per
    // measurement: the win is single-flight sharing within the batch, not
    // warm-cache replay.  dup0 rows bound the cache's bookkeeping overhead.
    const std::vector<int> batch_sizes =
        smoke ? std::vector<int>{1000} : std::vector<int>{1000, 10000, 100000};
    const int cache_sinks = 8;
    std::vector<CacheRow> cache_rows;
    for (const int total : batch_sizes) {
        for (const double ratio : {0.0, 0.5}) {
            const auto nets = dup_batch(101 + total, total, ratio, cache_sinks);
            CacheRow row;
            row.kernel = std::string(ratio == 0.0 ? "dup0_n" : "dup50_n") +
                         std::to_string(total);
            row.nets = total;
            row.sinks = cache_sinks;
            row.dup_ratio = ratio;

            PipelineOptions off;
            off.threads = 1;
            std::vector<NetRouteResult> off_results;
            row.off_s =
                time_best([&] { off_results = route_batch(nets, tech, off); });

            PipelineStats stats;
            std::vector<NetRouteResult> on_results;
            std::size_t entries = 0;
            row.on_s = time_best([&] {
                RouteCache cache;  // fresh per pass: measure cold sharing
                PipelineOptions on = off;
                on.cache = &cache;
                on_results = route_batch(nets, tech, on, &stats);
                entries = cache.size();
            });
            row.served = stats.cache_hits + stats.cache_shared;
            row.resident_bytes = stats.resident_bytes;
            row.entries = entries;
            row.compiles_per_routed_net = stats.compiles_per_routed_net;
            row.identical =
                format_results(on_results) == format_results(off_results);
            cache_rows.push_back(row);
            std::cout << "eco cache: " << row.kernel << "  off "
                      << fmt_sci(row.off_s, 2) << "s  on "
                      << fmt_sci(row.on_s, 2) << "s  speedup "
                      << fmt_fixed(row.speedup(), 2) << "x  served "
                      << row.served << "  compiles/routed "
                      << fmt_fixed(row.compiles_per_routed_net, 2)
                      << "  identical " << (row.identical ? "yes" : "NO")
                      << '\n';
        }
    }

    // --- cache determinism under threads and shards ---------------------
    // Same dup-heavy batch, cache on, swept over the thread list (through an
    // external pool, so the sweep exercises the parallel single-flight path
    // even on a single-core host) and shard counts 1/4/64: the epoch-drain
    // rule must keep the output bytes AND the cache contents identical to
    // the 1-thread 1-shard run in every cell.
    struct MtRow {
        int threads = 0;
        std::size_t shards = 0;
        bool identical = false;
    };
    const int mt_nets_n = 1000;
    const auto mt_nets = dup_batch(303, mt_nets_n, 0.5, cache_sinks);
    RouteCache mt_ref_cache;  // 1 shard
    PipelineOptions mt_serial;
    mt_serial.threads = 1;
    mt_serial.cache = &mt_ref_cache;
    const std::string mt_ref =
        format_results(route_batch(mt_nets, tech, mt_serial));
    const std::string mt_ref_dump = mt_ref_cache.dump();
    const std::uint64_t mt_ref_resident = mt_ref_cache.resident_bytes();
    std::vector<MtRow> mt_rows;
    bool mt_identical = true;
    for (const int threads : threads_list) {
        for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                         std::size_t{64}}) {
            RouteCache cache(0, shards);
            ThreadPool pool(threads);
            PipelineOptions opts;
            opts.threads = 1;
            opts.cache = &cache;
            opts.pool = threads > 1 ? &pool : nullptr;
            MtRow row{threads, shards, false};
            row.identical =
                format_results(route_batch(mt_nets, tech, opts)) == mt_ref &&
                cache.size() == mt_ref_cache.size() &&
                cache.resident_bytes() == mt_ref_resident &&
                (shards != 1 || cache.dump() == mt_ref_dump);
            mt_identical = mt_identical && row.identical;
            mt_rows.push_back(row);
            std::cout << "eco cache mt: " << mt_nets_n << " nets  threads "
                      << threads << "  shards " << shards << "  identical "
                      << (row.identical ? "yes" : "NO") << '\n';
        }
    }

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"eco_session\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"eco\": [\n";
    for (std::size_t i = 0; i < eco_rows.size(); ++i) {
        const EcoRow& r = eco_rows[i];
        out << "    {\"kernel\": \"" << r.kernel << "\", \"sinks\": " << r.sinks
            << ", \"full_s\": " << fmt_sci(r.full_s, 4)
            << ", \"eco_s\": " << fmt_sci(r.eco_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"incremental\": " << (r.incremental ? "true" : "false")
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < eco_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n"
        << "  \"cache\": [\n";
    for (std::size_t i = 0; i < cache_rows.size(); ++i) {
        const CacheRow& r = cache_rows[i];
        out << "    {\"kernel\": \"" << r.kernel << "\", \"sinks\": " << r.sinks
            << ", \"nets\": " << r.nets
            << ", \"dup_ratio\": " << fmt_fixed(r.dup_ratio, 2)
            << ", \"off_s\": " << fmt_sci(r.off_s, 4)
            << ", \"on_s\": " << fmt_sci(r.on_s, 4)
            << ", \"speedup\": " << fmt_fixed(r.speedup(), 2)
            << ", \"served\": " << r.served
            << ", \"resident_bytes\": " << r.resident_bytes
            << ", \"entries\": " << r.entries
            << ", \"compiles_per_routed_net\": "
            << fmt_fixed(r.compiles_per_routed_net, 2)
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < cache_rows.size() ? "," : "") << '\n';
    }
    // The resident-footprint row the regression checker tracks: the largest
    // dup50 batch's interned-payload RSS (refcounted sharing keeps it at one
    // payload per distinct signature, not per served net).
    const CacheRow& rss = cache_rows.back();
    out << "  ],\n"
        << "  \"cache_rss_100k\": {\"nets\": " << rss.nets
        << ", \"sinks\": " << rss.sinks
        << ", \"dup_ratio\": " << fmt_fixed(rss.dup_ratio, 2)
        << ", \"entries\": " << rss.entries
        << ", \"resident_bytes\": " << rss.resident_bytes << "},\n"
        << "  \"cache_mt\": {\"nets\": " << mt_nets_n
        << ", \"threads\": " << threads_list.back() << ", \"dup_ratio\": 0.50"
        << ", \"identical\": " << (mt_identical ? "true" : "false") << "},\n"
        << "  \"cache_mt_sharded\": [\n";
    for (std::size_t i = 0; i < mt_rows.size(); ++i) {
        const MtRow& r = mt_rows[i];
        out << "    {\"nets\": " << mt_nets_n << ", \"threads\": " << r.threads
            << ", \"shards\": " << r.shards
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < mt_rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_ok = mt_identical;
    for (const EcoRow& r : eco_rows)
        all_ok = all_ok && r.identical && r.incremental;
    for (const CacheRow& r : cache_rows)
        all_ok = all_ok && r.identical && r.compiles_per_routed_net <= 1.0;
    return all_ok;
}

bool write_serve_json(const std::string& path, bool smoke)
{
    ScopedSimdMode scalar_pin(SimdMode::scalar);
    const Technology tech = mcm_technology();

    // --- service overload study -----------------------------------------
    // Growing client counts hammer a SessionService whose admission queue
    // is capped at 2 and whose pipeline runs under a virtual-clock deadline
    // plan, so every row exercises both overload paths at once: whole
    // requests refused with OverloadError, and admitted nets degraded down
    // the RouteStatus ladder.  Latency is wall-clock per request (rejected
    // requests included: refusal is the latency the client sees).  The
    // regression checker hard-fails any row with failed or hung requests
    // or a missing outcome mix -- graceful degradation means every request
    // finishes with a classified result, never an error or a stall.
    struct ServeRow {
        int clients = 0;
        int requests = 0;   ///< per client
        std::size_t queue_cap = 0;
        double p50_ms = 0.0;
        double p99_ms = 0.0;
        std::array<std::uint64_t, kRouteStatusCount> outcomes{};
        std::uint64_t rejected_requests = 0;  ///< OverloadError refusals
        std::uint64_t completed = 0;          ///< requests that returned
        std::uint64_t failed = 0;  ///< non-overload exceptions (must be 0)
        std::uint64_t hung = 0;    ///< started but never finished (must be 0)
        std::uint64_t pressure_evictions = 0;  ///< memory-budget LRU drops
    };

    const std::vector<int> client_counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const int requests = smoke ? 4 : 8;
    const int batch_nets = smoke ? 8 : 20;
    const std::vector<Net> common = random_nets(314, batch_nets, kMcmGrid, 6);

    std::vector<ServeRow> rows;
    for (const int clients : client_counts) {
        ServeRow row;
        row.clients = clients;
        row.requests = requests;
        row.queue_cap = 2;
        row.outcomes.fill(0);

        ServiceOptions so;
        so.threads = 2;
        so.queue_cap = row.queue_cap;
        // A deliberately tight budget so LRU pressure eviction runs on the
        // same traffic that exercises admission control (the study's rows
        // report how often it fired; correctness is unaffected).
        so.memory_budget_bytes = 2 * 1024;
        so.session.pipeline.faults =
            FaultPlan::parse("seed=5,vdeadline=10,vjitter=20");
        SessionService svc(tech, so);

        std::vector<std::vector<double>> latency(clients);
        std::vector<std::array<std::uint64_t, kRouteStatusCount>> tallies(
            clients);
        for (auto& t : tallies) t.fill(0);
        std::vector<std::uint64_t> rejected(clients, 0), failed(clients, 0),
            started(clients, 0), finished(clients, 0), unknown(clients, 0);

        // Alternate session flavors: even clients run under the virtual
        // deadline plan (seasoning the outcome mix with deadline_degraded
        // rungs), odd clients run fault-free so their clean results intern
        // into the shared cache -- which is what gives the memory budget
        // something to pressure-evict (fault-carrying requests bypass the
        // cache entirely, DESIGN.md §11).
        SessionOptions plain = so.session;
        plain.pipeline.faults = FaultPlan{};
        std::vector<SessionId> ids;
        for (int c = 0; c < clients; ++c)
            ids.push_back(c % 2 ? svc.open(plain) : svc.open());

        std::vector<std::thread> workers;
        for (int c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                for (int r = 0; r < requests; ++r) {
                    std::vector<Net> nets;
                    nets.reserve(common.size());
                    const Coord dx = static_cast<Coord>(900 * c + 13 * r);
                    const Coord dy = static_cast<Coord>(500 * c + 7 * r);
                    for (const Net& n : common) {
                        Net copy = n;
                        copy.source = Point{n.source.x + dx, n.source.y + dy};
                        for (Point& p : copy.sinks)
                            p = Point{p.x + dx, p.y + dy};
                        nets.push_back(std::move(copy));
                    }
                    ++started[c];
                    const auto t0 = std::chrono::steady_clock::now();
                    try {
                        const std::vector<NetId> net_ids =
                            svc.add_batch(ids[c], nets);
                        for (const NetId nid : net_ids) {
                            const RouteStatus st =
                                svc.result(ids[c], nid).status;
                            const auto idx = static_cast<std::size_t>(st);
                            if (idx < kRouteStatusCount)
                                ++tallies[c][idx];
                            else
                                ++unknown[c];
                        }
                    } catch (const OverloadError&) {
                        ++rejected[c];
                    } catch (const std::exception&) {
                        ++failed[c];
                    }
                    const std::chrono::duration<double, std::milli> dt =
                        std::chrono::steady_clock::now() - t0;
                    latency[c].push_back(dt.count());
                    ++finished[c];
                }
            });
        }
        for (auto& w : workers) w.join();

        std::vector<double> all_ms;
        for (int c = 0; c < clients; ++c) {
            all_ms.insert(all_ms.end(), latency[c].begin(), latency[c].end());
            for (std::size_t s = 0; s < kRouteStatusCount; ++s)
                row.outcomes[s] += tallies[c][s];
            row.rejected_requests += rejected[c];
            row.failed += failed[c] + unknown[c];
            row.completed += finished[c];
            row.hung += started[c] - finished[c];
        }
        std::sort(all_ms.begin(), all_ms.end());
        const auto pct = [&](double q) {
            if (all_ms.empty()) return 0.0;
            const auto i = static_cast<std::size_t>(
                q * static_cast<double>(all_ms.size() - 1) + 0.5);
            return all_ms[std::min(i, all_ms.size() - 1)];
        };
        row.p50_ms = pct(0.50);
        row.p99_ms = pct(0.99);
        row.pressure_evictions = svc.stats().pressure_evictions;

        std::cout << "serve overload: clients " << row.clients << "  requests "
                  << row.completed << "  rejected " << row.rejected_requests
                  << "  p50 " << fmt_fixed(row.p50_ms, 2) << "ms  p99 "
                  << fmt_fixed(row.p99_ms, 2) << "ms  failed " << row.failed
                  << "  hung " << row.hung << '\n';
        rows.push_back(row);
    }

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    out << "{\n"
        << "  \"benchmark\": \"serve_overload\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"queue_cap\": 2,\n"
        << "  \"memory_budget_bytes\": 2048,\n"
        << "  \"fault_spec\": \"seed=5,vdeadline=10,vjitter=20\",\n"
        << "  \"batch_nets\": " << batch_nets << ",\n"
        << "  \"serve_overload\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ServeRow& r = rows[i];
        out << "    {\"clients\": " << r.clients
            << ", \"requests_per_client\": " << r.requests
            << ", \"queue_cap\": " << r.queue_cap
            << ", \"p50_ms\": " << fmt_fixed(r.p50_ms, 3)
            << ", \"p99_ms\": " << fmt_fixed(r.p99_ms, 3)
            << ", \"rejected_requests\": " << r.rejected_requests
            << ", \"completed\": " << r.completed
            << ", \"failed\": " << r.failed << ", \"expected_failed\": 0"
            << ", \"hung\": " << r.hung
            << ", \"pressure_evictions\": " << r.pressure_evictions
            << ", \"outcomes\": {";
        for (std::size_t s = 0; s < kRouteStatusCount; ++s)
            out << (s ? ", " : "") << '"'
                << to_string(static_cast<RouteStatus>(s))
                << "\": " << r.outcomes[s];
        out << "}}" << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    bool all_ok = true;
    for (const ServeRow& r : rows) {
        all_ok = all_ok && r.failed == 0 && r.hung == 0;
        // Every rung tallied above rejected_overload's per-net form comes
        // from svc.result, so a nonzero `failed` rung means a net errored
        // inside an admitted request -- not graceful degradation.
        all_ok = all_ok &&
                 r.outcomes[static_cast<std::size_t>(RouteStatus::failed)] == 0;
    }
    return all_ok;
}

bool write_chip_json(const std::string& path, bool smoke)
{
    ScopedSimdMode scalar_pin(SimdMode::scalar);
    const Technology tech = mcm_technology();

    // --- chip workload study --------------------------------------------
    // A whole generated design streamed through route_stream in 512-net
    // chunks: throughput at 1 and 4 threads with byte-identity of the
    // serialized results (the format_results contract lifted to streams),
    // chunked-vs-one-shot byte-identity, and the bounded-memory witness --
    // a 10x larger design through the same chunk size must not grow the
    // persistent workspace footprint.  The full run is the acceptance-scale
    // 100k-net design; smoke shrinks the net count only.
    const std::size_t full_nets = smoke ? 2000 : 100000;
    const std::size_t chunk = 512;
    const int sinks = 6;
    const std::uint64_t seed = 71;

    struct ChipRun {
        std::string bytes;  ///< format_results over the whole stream
        StreamStats st;
        double seconds = 0.0;
    };
    const auto run_stream = [&](std::size_t count, int threads,
                                std::size_t chunk_nets) {
        PipelineOptions popts;
        popts.threads = threads;
        GeneratedNetSource src(seed, count, kMcmGrid, sinks);
        StreamOptions sopts;
        sopts.chunk_nets = chunk_nets;
        std::vector<NetRouteResult> all;
        all.reserve(count);
        ChipRun r;
        const auto t0 = std::chrono::steady_clock::now();
        r.st = route_stream(src, tech, popts, sopts,
                            [&](std::size_t, const std::vector<WorkItem>&,
                                const std::vector<NetRouteResult>& results) {
                                all.insert(all.end(), results.begin(),
                                           results.end());
                            });
        r.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.bytes = format_results(all);
        return r;
    };

    const ChipRun serial = run_stream(full_nets, 1, chunk);
    const ChipRun threaded = run_stream(full_nets, 4, chunk);
    const ChipRun oneshot = run_stream(full_nets, 1, 0);
    const ChipRun small = run_stream(full_nets / 10, 1, chunk);

    const bool mt_identical = threaded.bytes == serial.bytes;
    const bool oneshot_identical = oneshot.bytes == serial.bytes;
    // Arenas are high-water marks of the largest net routed, so a 10x
    // larger design may legitimately grow them a little; staying under 2x
    // while the design grows 10x is the design-size-independence witness.
    const bool bounded = small.st.workspace_resident_bytes > 0 &&
                         serial.st.workspace_resident_bytes <=
                             2 * small.st.workspace_resident_bytes;

    std::cout << "chip stream: " << full_nets << " nets  serial "
              << fmt_fixed(static_cast<double>(full_nets) / serial.seconds, 0)
              << " nets/s  4-thread "
              << fmt_fixed(static_cast<double>(full_nets) / threaded.seconds, 0)
              << " nets/s  mt_identical " << (mt_identical ? "yes" : "no")
              << "  oneshot_identical " << (oneshot_identical ? "yes" : "no")
              << "  resident " << serial.st.workspace_resident_bytes
              << "B (10% design: " << small.st.workspace_resident_bytes
              << "B)\n";

    // --- delay-model cross-check ----------------------------------------
    // A smaller constrained design: every third net gets a loose RAT (1.5x
    // its bounding-box estimate, normally met), every tenth a hopeless one
    // (0.1x, a guaranteed violation), so WNS/TNS and the measured-vs-
    // estimate ratio band are all exercised with nonzero values.
    const std::size_t dm_nets = smoke ? 300 : 3000;
    std::vector<WorkItem> dm_items;
    {
        GeneratedNetSource src(seed + 1, dm_nets, kMcmGrid, sinks);
        while (src.pull(dm_items, 1024) != 0) {}
        for (std::size_t i = 0; i < dm_items.size(); ++i) {
            const double bb = bounding_box_delay_s(dm_items[i].net, tech);
            if (i % 10 == 0) {
                dm_items[i].meta.required_arrival_s = 0.1 * bb;
                dm_items[i].meta.criticality = 2.0;
            } else if (i % 3 == 0) {
                dm_items[i].meta.required_arrival_s = 1.5 * bb;
            }
        }
    }
    ChipAggregator agg(tech, 10);
    {
        VectorNetSource src(dm_items);
        StreamOptions sopts;
        sopts.chunk_nets = chunk;
        route_stream(src, tech, {}, sopts,
                     [&](std::size_t first, const std::vector<WorkItem>& it,
                         const std::vector<NetRouteResult>& r) {
                         agg.add_chunk(first, it, r);
                     });
    }
    const ChipSummary& dm = agg.summary();
    // Model sanity gate: every routed net produced a usable ratio and the
    // band is physical (positive, bounded) with the planted violations seen.
    const bool model_ok = dm.ratio_nets == dm.routed && dm.ratio_min > 0.0 &&
                          dm.ratio_max < 100.0 && dm.violations > 0 &&
                          dm.wns_s < 0.0 && dm.tns_s <= dm.wns_s;
    std::cout << "chip delay model: " << dm.nets << " nets  ratio mean "
              << fmt_fixed(dm.ratio_mean, 3) << " [" << fmt_fixed(dm.ratio_min, 3)
              << ", " << fmt_fixed(dm.ratio_max, 3) << "]  violations "
              << dm.violations << "  wns " << fmt_sci(dm.wns_s, 2) << "s  ok "
              << (model_ok ? "yes" : "no") << '\n';

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    const auto stream_row = [&](const ChipRun& r, int threads, bool identical,
                                double speedup) {
        out << "    {\"nets\": " << full_nets << ", \"threads\": " << threads
            << ", \"chunk_nets\": " << chunk
            << ", \"chunks\": " << r.st.chunks
            << ", \"seconds\": " << fmt_sci(r.seconds, 4)
            << ", \"nets_per_sec\": "
            << fmt_fixed(static_cast<double>(full_nets) / r.seconds, 1)
            << ", \"speedup\": " << fmt_fixed(speedup, 2)
            << ", \"resident_bytes\": " << r.st.workspace_resident_bytes
            << ", \"failed\": " << r.st.pipeline.nets_failed
            << ", \"expected_failed\": 0"
            << ", \"compiles_per_net\": "
            << fmt_fixed(r.st.pipeline.compiles_per_net, 4)
            << ", \"compiles_per_routed_net\": "
            << fmt_fixed(r.st.pipeline.compiles_per_routed_net, 4)
            << ", \"identical\": " << (identical ? "true" : "false") << "}";
    };
    out << "{\n"
        << "  \"benchmark\": \"chip_workload\",\n"
        << "  \"generated_by\": \"bench_micro_scaling\",\n"
        << "  \"technology\": \"mcm\",\n"
        << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"sinks\": " << sinks << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"chip_stream\": [\n";
    stream_row(serial, 1, true, 1.0);
    out << ",\n";
    stream_row(threaded, 4, mt_identical, serial.seconds / threaded.seconds);
    out << "\n  ],\n"
        << "  \"chip_identity\": {\"chunked_vs_oneshot\": {\"nets\": "
        << full_nets << ", \"chunk_nets\": " << chunk
        << ", \"identical\": " << (oneshot_identical ? "true" : "false")
        << "}},\n"
        << "  \"chip_bounded_memory\": {\n"
        << "    \"small\": {\"nets\": " << full_nets / 10
        << ", \"resident_bytes\": " << small.st.workspace_resident_bytes
        << "},\n"
        << "    \"full\": {\"nets\": " << full_nets
        << ", \"resident_bytes\": " << serial.st.workspace_resident_bytes
        << "},\n"
        << "    \"identical\": " << (bounded ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"chip_delay_model\": {\"nets\": " << dm.nets
        << ", \"routed\": " << dm.routed << ", \"constrained\": "
        << dm.constrained << ", \"violations\": " << dm.violations
        << ", \"ratio_mean\": " << fmt_fixed(dm.ratio_mean, 4)
        << ", \"ratio_min\": " << fmt_fixed(dm.ratio_min, 4)
        << ", \"ratio_max\": " << fmt_fixed(dm.ratio_max, 4)
        << ", \"ratio_nets\": " << dm.ratio_nets
        << ", \"wns_s\": " << fmt_sci(dm.wns_s, 4)
        << ", \"tns_s\": " << fmt_sci(dm.tns_s, 4)
        << ", \"identical\": " << (model_ok ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "wrote " << path << '\n';

    return mt_identical && oneshot_identical && bounded && model_ok &&
           serial.st.pipeline.nets_failed == 0;
}

}  // namespace
}  // namespace cong93

int main(int argc, char** argv)
{
    std::string json_path = "BENCH_wiresize.json";
    std::string atree_json_path = "BENCH_atree.json";
    std::string pipeline_json_path = "BENCH_pipeline.json";
    std::string metrics_json_path = "BENCH_metrics.json";
    std::string simd_json_path = "BENCH_simd.json";
    std::string eco_json_path = "BENCH_eco.json";
    std::string serve_json_path = "BENCH_serve.json";
    std::string chip_json_path = "BENCH_chip.json";
    bool json_only = false;
    bool smoke = false;
    bool skip_wiresize = false;
    bool skip_atree = false;
    std::vector<int> threads_list = {1, 2, 4, 8};
    const auto parse_threads_list = [&](const char* spec) {
        threads_list.clear();
        std::string token;
        std::istringstream is(spec);
        while (std::getline(is, token, ','))
            threads_list.push_back(std::max(1, std::atoi(token.c_str())));
        if (threads_list.empty()) threads_list = {1};
    };
    std::vector<char*> keep;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--atree-json=", 13) == 0)
            atree_json_path = argv[i] + 13;
        else if (std::strncmp(argv[i], "--pipeline-json=", 16) == 0)
            pipeline_json_path = argv[i] + 16;
        else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0)
            metrics_json_path = argv[i] + 15;
        else if (std::strncmp(argv[i], "--simd-json=", 12) == 0)
            simd_json_path = argv[i] + 12;
        else if (std::strncmp(argv[i], "--eco-json=", 11) == 0)
            eco_json_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--serve-json=", 13) == 0)
            serve_json_path = argv[i] + 13;
        else if (std::strncmp(argv[i], "--chip-json=", 12) == 0)
            chip_json_path = argv[i] + 12;
        else if (std::strcmp(argv[i], "--json-only") == 0)
            json_only = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--skip-wiresize") == 0)
            skip_wiresize = true;
        else if (std::strcmp(argv[i], "--skip-atree") == 0)
            skip_atree = true;
        else if (std::strncmp(argv[i], "--threads-list=", 15) == 0)
            parse_threads_list(argv[i] + 15);
        else
            keep.push_back(argv[i]);
    }
    if (!json_only) {
        int kargc = static_cast<int>(keep.size());
        benchmark::Initialize(&kargc, keep.data());
        if (benchmark::ReportUnrecognizedArguments(kargc, keep.data())) return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    // --skip-* regenerate a study subset (e.g. BENCH_pipeline.json alone)
    // without paying for the large A-tree construction study.
    const bool wiresize_ok =
        skip_wiresize || cong93::write_scaling_json(json_path);
    const bool atree_ok =
        skip_atree || cong93::write_atree_json(atree_json_path, smoke);
    const bool metrics_ok =
        cong93::write_metrics_json(metrics_json_path, smoke);
    const bool pipeline_ok =
        cong93::write_pipeline_json(pipeline_json_path, smoke, threads_list);
    const bool simd_ok = cong93::write_simd_json(simd_json_path, smoke);
    const bool eco_ok = cong93::write_eco_json(eco_json_path, smoke, threads_list);
    const bool serve_ok = cong93::write_serve_json(serve_json_path, smoke);
    const bool chip_ok = cong93::write_chip_json(chip_json_path, smoke);
    return wiresize_ok && atree_ok && metrics_ok && pipeline_ok && simd_ok &&
                   eco_ok && serve_ok && chip_ok
               ? 0
               : 1;
}
