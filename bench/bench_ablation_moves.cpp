// Ablation study of the A-tree design choices (DESIGN.md section 3):
//  1. safe moves ON (the paper's algorithm) vs OFF (pure Rao et al.
//     heuristic construction) -- how much do the optimal moves matter?
//  2. heuristic policy: farthest-corner (tree quality) vs
//     min-suboptimality (lower-bound quality).
// Measured on 100 8-sink and 16-sink first-quadrant MCM nets: wirelength,
// QMST cost, simulated delay, and the online ERROR bound.
#include <random>

#include "atree/atree.h"
#include "bench_common.h"
#include "netgen/netgen.h"
#include "report/table.h"
#include "sim/delay_measure.h"
#include "tech/technology.h"

namespace cong93 {
namespace {

struct Agg {
    double cost = 0, qmst = 0, delay = 0, sb = 0;
    int all_safe = 0;
};

void run()
{
    bench::banner("Ablation -- safe moves and heuristic policy",
                  "design-choice study (not a paper table)");
    const Technology tech = mcm_technology();

    struct Variant {
        const char* name;
        AtreeOptions opts;
    };
    const std::vector<Variant> variants = {
        {"paper (safe+farthest)", {HeuristicPolicy::farthest_corner, true}},
        {"no safe moves", {HeuristicPolicy::farthest_corner, false}},
        {"safe+min-SB policy", {HeuristicPolicy::min_suboptimality, true}},
    };

    // Sparse (MCM-scale) and dense (congested) populations: on sparse nets
    // the farthest-corner heuristic usually coincides with the safe-move
    // construction (only the ERROR certificate differs); on dense nets safe
    // moves win outright.
    struct Config {
        int sinks;
        Coord span;
    };
    for (const Config cfg : {Config{8, kMcmGrid}, Config{16, kMcmGrid},
                             Config{16, 40}, Config{24, 40}}) {
        const int sinks = cfg.sinks;
        std::vector<Agg> agg(variants.size());
        std::mt19937_64 rng(static_cast<std::uint64_t>(4000 + sinks));
        for (int n = 0; n < bench::kNetsPerConfig; ++n) {
            std::uniform_int_distribution<Coord> c(0, cfg.span);
            Net net;
            net.source = Point{0, 0};
            for (int k = 0; k < sinks; ++k) net.sinks.push_back(Point{c(rng), c(rng)});
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const AtreeResult r = build_atree(net, variants[v].opts);
                agg[v].cost += static_cast<double>(r.cost);
                agg[v].qmst += static_cast<double>(r.qmst_cost);
                agg[v].delay += measure_delay(r.tree, tech).mean;
                agg[v].sb += static_cast<double>(r.sb_total);
                agg[v].all_safe += r.all_safe() ? 1 : 0;
            }
        }
        std::cout << "\n--- " << sinks << " sinks, span " << cfg.span << " ---\n";
        TextTable t({"variant", "avg length", "avg QMST cost", "avg delay (ns)",
                     "avg ERROR", "all-safe trees"});
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const double n = bench::kNetsPerConfig;
            t.add_row({variants[v].name, fmt_fixed(agg[v].cost / n, 1),
                       fmt_sci(agg[v].qmst / n, 3), fmt_ns(agg[v].delay / n),
                       fmt_fixed(agg[v].sb / n, 1),
                       std::to_string(agg[v].all_safe)});
        }
        t.print(std::cout);
    }
    std::cout << "\nExpected: disabling safe moves costs wirelength/QMST/delay "
                 "and destroys the zero-ERROR optimality certificates; the "
                 "min-SB policy trades a slightly worse tree for a smaller "
                 "ERROR (tighter lower bounds).\n";
}

}  // namespace
}  // namespace cong93

int main()
{
    cong93::run();
    return 0;
}
