#!/usr/bin/env python3
"""Regression check for the committed BENCH_*.json scaling studies.

Compares a freshly generated study against the committed one.  Two classes
of checks with different severities:

* Identity checks are HARD failures (exit 1): every ``identical`` /
  ``fixpoint_identical`` / ``reused`` / ``ulp_ok`` field -- in timing rows,
  in scalar sections like ``batch`` or ``arena``, and anywhere nested (the
  walk is recursive, so the ``cache_mt`` / ``cache_mt_sharded`` determinism
  rows cannot hide a false verdict at any depth) -- must be true in the
  fresh study.  These assert bit-exact equivalence of optimized kernels
  against their reference twins (``ulp_ok``: ULP-bounded equivalence of
  relaxed vectorized kernels, bit-exact for strict rows), which no machine
  variance can excuse.  A fresh study that silently DROPS a committed
  ``cache_mt*``, ``serve_overload*`` or ``chip_*`` determinism section is a
  hard failure too: the identity claim must be re-proven, not removed.

* Failure counts are HARD failures too: any fresh entry carrying a
  ``failed`` field must match its ``expected_failed`` (default 0).  Plain
  pipeline rows must report zero nets below the ok rung; the
  ``fault_injection`` probe must fail exactly as many nets threaded as
  serial.  Either mismatch means the isolation layer lost determinism or
  the routers started degrading organically -- not machine variance.

* Liveness counts are HARD failures: any fresh entry carrying a ``hung``
  field must report zero -- a serve-overload request that started but never
  finished means graceful degradation lost a request instead of classifying
  it.  ``serve_overload`` rows must also carry their ``outcomes`` mix (the
  per-rung RouteStatus tally); a row that drops it hides the degradation
  ladder the study exists to witness, and like ``cache_mt*`` the whole
  section cannot silently disappear from a fresh study.

* Compile counts are HARD failures: any fresh entry carrying a
  ``compiles_per_net`` or ``compiles_per_routed_net`` field must not exceed
  1.0.  The batch pipeline compiles each net's FlatTree exactly once and
  every downstream stage shares that compile; a higher rate means a
  consumer regressed into re-deriving the IR.  With the hash-consed route
  cache attached, ``compiles_per_net`` may legally drop *below* 1.0
  (cache-served nets never compile); ``compiles_per_routed_net`` divides by
  the nets that actually executed the route ladder, so it stays an exact
  one-compile-per-routed-net witness either way.

* Speedup comparisons stay warn-only: rows are matched by section, optional
  kernel name, and size (``sinks`` or ``threads``), and a warning is printed
  when the fresh speedup drops below half the committed value.  Machine
  variance between the committing host and CI runners makes a hard speedup
  gate too noisy; the job output is the signal.

* Resident-footprint comparisons are warn-only the same way: any entry
  carrying ``resident_bytes`` (the cache RSS rows, e.g. ``cache_rss_100k``)
  warns when the fresh footprint exceeds 1.5x the committed value --
  payload interning regressing to per-net copies shows up here long before
  it shows up as a throughput loss.

Usage: check_bench_regression.py COMMITTED.json FRESH.json
"""

import json
import sys


def row_key(section, row):
    """Stable identity of a timing row: section, optional kernel/mode, size."""
    # Pipeline scaling rows carry both fields; threads is the row identity
    # there (sinks is just the batch shape, which smoke runs shrink).  SIMD
    # kernel rows repeat each (kernel, sinks) pair per reduction-order mode.
    size_field = "threads" if "threads" in row else "sinks"
    return (
        section,
        row.get("kernel", ""),
        row.get("mode", ""),
        size_field,
        row.get(size_field),
    )


def timing_rows(study):
    """All timing rows in a study, keyed by row_key."""
    out = {}
    for section, rows in study.items():
        if not isinstance(rows, list):
            continue
        for row in rows:
            if isinstance(row, dict) and "speedup" in row and (
                "sinks" in row or "threads" in row
            ):
                out[row_key(section, row)] = row
    return out


IDENTITY_FIELDS = ("identical", "fixpoint_identical", "reused", "ulp_ok")


def identity_violations(study):
    """Every false identity-class field anywhere in the study (recursive)."""
    bad = []

    def walk(section, value):
        if isinstance(value, dict):
            if any(value.get(f, True) is False for f in IDENTITY_FIELDS):
                bad.append((section, value))
            for key, child in value.items():
                if isinstance(child, (dict, list)):
                    walk(f"{section}.{key}" if section else key, child)
        elif isinstance(value, list):
            for child in value:
                walk(section, child)

    for section, value in study.items():
        walk(section, value)
    return bad


def resident_rows(study):
    """Entries carrying ``resident_bytes``, keyed by section/kernel/size."""
    out = {}

    def walk(section, value):
        if isinstance(value, dict):
            if "resident_bytes" in value:
                key = (section, value.get("kernel", ""), value.get("nets"))
                out[key] = value
            for k, child in value.items():
                if isinstance(child, (dict, list)):
                    walk(f"{section}.{k}" if section else k, child)
        elif isinstance(value, list):
            for child in value:
                walk(section, child)

    for section, value in study.items():
        walk(section, value)
    return out


def failure_violations(study):
    """Every entry whose ``failed`` count differs from ``expected_failed``."""
    bad = []
    for section, value in study.items():
        entries = value if isinstance(value, list) else [value]
        for entry in entries:
            if not isinstance(entry, dict) or "failed" not in entry:
                continue
            expected = entry.get("expected_failed", 0)
            if entry["failed"] != expected:
                bad.append((section, entry, expected))
    return bad


def liveness_violations(study):
    """Hung requests and serve rows that dropped their outcome mix."""
    bad = []
    for section, value in study.items():
        entries = value if isinstance(value, list) else [value]
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            if entry.get("hung", 0) != 0:
                bad.append((section, entry, f"hung={entry['hung']}"))
            if section.startswith("serve_overload") and not isinstance(
                entry.get("outcomes"), dict
            ):
                bad.append((section, entry, "missing outcomes mix"))
    return bad


def compile_rate_violations(study):
    """Every entry compiling more than once per (routed) net."""
    bad = []
    for section, value in study.items():
        entries = value if isinstance(value, list) else [value]
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            for field in ("compiles_per_net", "compiles_per_routed_net"):
                if float(entry.get(field, 0.0)) > 1.0:
                    bad.append((section, entry, field))
    return bad


def describe(section, row):
    kernel = row.get("kernel")
    size = next(
        (f"{f}={row[f]}" for f in ("threads", "sinks") if f in row), ""
    )
    parts = [p for p in (kernel, size) if p]
    return f"{section}[{', '.join(parts)}]" if parts else section


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            committed = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: cannot compare benchmarks: {e}")
        return 0

    failed = False
    for section, entry in identity_violations(fresh):
        field = next(
            f
            for f in ("identical", "fixpoint_identical", "reused", "ulp_ok")
            if entry.get(f, True) is False
        )
        print(f"FAIL: {describe(section, entry)}: {field} is false")
        failed = True

    for section, entry, expected in failure_violations(fresh):
        print(
            f"FAIL: {describe(section, entry)}: failed={entry['failed']} "
            f"(expected {expected})"
        )
        failed = True

    for section, entry, why in liveness_violations(fresh):
        print(f"FAIL: {describe(section, entry)}: {why}")
        failed = True

    for section, entry, field in compile_rate_violations(fresh):
        print(
            f"FAIL: {describe(section, entry)}: "
            f"{field}={entry[field]} (limit 1.0)"
        )
        failed = True

    for section in committed:
        if (
            section.startswith("cache_mt")
            or section.startswith("serve_overload")
            or section.startswith("chip_")
        ) and section not in fresh:
            print(f"FAIL: fresh study dropped determinism section {section}")
            failed = True

    committed_rows = timing_rows(committed)
    fresh_rows = timing_rows(fresh)
    warned = False
    committed_resident = resident_rows(committed)
    for key, frow in sorted(resident_rows(fresh).items(), key=str):
        crow = committed_resident.get(key)
        if crow is None:
            continue  # smoke runs shrink the batch; sizes will not match
        committed_bytes = int(crow["resident_bytes"])
        fresh_bytes = int(frow["resident_bytes"])
        if committed_bytes > 0 and fresh_bytes > 1.5 * committed_bytes:
            print(
                f"warning: {describe(key[0], frow)}: resident_bytes grew "
                f"{committed_bytes} -> {fresh_bytes}"
            )
            warned = True
    for key, crow in sorted(committed_rows.items(), key=str):
        frow = fresh_rows.get(key)
        if frow is None:
            continue  # smoke runs cover a size subset; that is fine
        section = key[0]
        committed_speedup = float(crow["speedup"])
        fresh_speedup = float(frow["speedup"])
        if committed_speedup > 0 and fresh_speedup < 0.5 * committed_speedup:
            print(
                f"warning: {describe(section, frow)}: speedup regressed "
                f"{committed_speedup:.2f}x -> {fresh_speedup:.2f}x"
            )
            warned = True
        else:
            print(
                f"ok: {describe(section, frow)}: committed "
                f"{committed_speedup:.2f}x, fresh {fresh_speedup:.2f}x"
            )

    if failed:
        print("identity check FAILED")
        return 1
    if not warned:
        print("no speedup regressions detected")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
