#!/usr/bin/env python3
"""Warn-only speedup regression check for the committed BENCH_*.json studies.

Compares a freshly generated scaling study against the committed one: rows
are matched by sink count and a warning is printed when the fresh speedup
drops below half the committed value.  Always exits 0 -- machine variance
between the committing host and CI runners makes a hard gate too noisy; the
job output is the signal.

Usage: check_bench_regression.py COMMITTED.json FRESH.json
"""

import json
import sys


def rows_by_sinks(study):
    """All timing rows in a study, keyed by (section, sinks)."""
    out = {}
    for section, rows in study.items():
        if not isinstance(rows, list):
            continue
        for row in rows:
            if isinstance(row, dict) and "sinks" in row and "speedup" in row:
                out[(section, row["sinks"])] = row
    return out


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            committed = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: cannot compare benchmarks: {e}")
        return 0

    committed_rows = rows_by_sinks(committed)
    fresh_rows = rows_by_sinks(fresh)
    warned = False
    for key, crow in sorted(committed_rows.items()):
        frow = fresh_rows.get(key)
        if frow is None:
            continue  # smoke runs cover a size subset; that is fine
        section, sinks = key
        if not frow.get("identical", frow.get("fixpoint_identical", True)):
            print(f"warning: {section}[sinks={sinks}]: results NOT identical")
            warned = True
        committed_speedup = float(crow["speedup"])
        fresh_speedup = float(frow["speedup"])
        if committed_speedup > 0 and fresh_speedup < 0.5 * committed_speedup:
            print(
                f"warning: {section}[sinks={sinks}]: speedup regressed "
                f"{committed_speedup:.2f}x -> {fresh_speedup:.2f}x"
            )
            warned = True
        else:
            print(
                f"ok: {section}[sinks={sinks}]: committed "
                f"{committed_speedup:.2f}x, fresh {fresh_speedup:.2f}x"
            )
    if not warned:
        print("no speedup regressions detected")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
