// The cong93 command-line tool; all logic lives in src/cli (testable).
#include <exception>
#include <iostream>
#include <vector>

#include "batch/batch.h"
#include "cli/cli.h"

int main(int argc, char** argv)
{
    try {
        const std::vector<std::string> args(argv + 1, argv + argc);
        const cong93::CliOptions opts = cong93::parse_cli(args);
        return cong93::run_cli(opts, std::cout);
    } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const cong93::BatchError& e) {
        // Aggregated worker failures (programming errors escaping the
        // per-net isolation layer): list every cause.
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
